module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior
module Rng = Pi_stats.Rng

type ctx = {
  builder : B.t;
  rng : Rng.t;
  scale : int;
  mutable labels : string list;
  mutable label_counter : int;
}

let make_ctx ~name ~scale =
  if scale < 1 then invalid_arg "Toolkit.make_ctx: scale < 1";
  let seed_rng = Rng.named_stream (Rng.create 0x5EC2006) name in
  { builder = B.create ~name; rng = seed_rng; scale; labels = []; label_counter = 0 }

let fresh_label ctx =
  let l = Printf.sprintf "br%d" ctx.label_counter in
  ctx.label_counter <- ctx.label_counter + 1;
  l

type branch_mix = {
  p_biased : float;
  p_periodic_short : float;
  p_periodic_long : float;
  p_loop_long : float;
  p_random : float;
}

let easy_mix =
  { p_biased = 0.86; p_periodic_short = 0.05; p_periodic_long = 0.015; p_loop_long = 0.02; p_random = 0.012 }

let patterned_mix =
  { p_biased = 0.64; p_periodic_short = 0.10; p_periodic_long = 0.07; p_loop_long = 0.05; p_random = 0.02 }

let long_history_mix =
  { p_biased = 0.34; p_periodic_short = 0.10; p_periodic_long = 0.26; p_loop_long = 0.18; p_random = 0.04 }

let hard_mix =
  { p_biased = 0.42; p_periodic_short = 0.12; p_periodic_long = 0.06; p_loop_long = 0.02; p_random = 0.28 }

let deterministic_mix =
  { p_biased = 1.0; p_periodic_short = 0.0; p_periodic_long = 0.0; p_loop_long = 0.0; p_random = 0.0 }

let fp_mix =
  { p_biased = 0.86; p_periodic_short = 0.06; p_periodic_long = 0.01; p_loop_long = 0.04; p_random = 0.01 }

let periodic_pattern ctx ~period =
  (* A repeating pattern with some internal structure (runs), not pure
     noise, so history predictors can learn it. *)
  let pattern = Array.make period false in
  let bit = ref (Rng.bool ctx.rng) in
  let i = ref 0 in
  while !i < period do
    let run = 1 + Rng.int ctx.rng (max 1 (period / 3)) in
    let stop = min period (!i + run) in
    while !i < stop do
      pattern.(!i) <- !bit;
      incr i
    done;
    bit := not !bit
  done;
  pattern

let gen_behavior ctx mix =
  let r = Rng.float ctx.rng 1.0 in
  let biased () =
    (* Most "biased" branches in compiled code are deterministic on a given
       input (error checks, type guards); only some carry rare data-driven
       flips. Determinism matters: random flips pollute global history and
       starve long-history predictors in short runs. *)
    if Rng.float ctx.rng 1.0 < 0.55 then
      if Rng.bool ctx.rng then Behavior.Always_taken else Behavior.Never_taken
    else
      let p = 0.965 +. Rng.float ctx.rng 0.033 in
      let p = if Rng.bool ctx.rng then p else 1.0 -. p in
      Behavior.Bernoulli { p_taken = p }
  in
  let threshold_1 = mix.p_biased in
  let threshold_2 = threshold_1 +. mix.p_periodic_short in
  let threshold_3 = threshold_2 +. mix.p_periodic_long in
  let threshold_4 = threshold_3 +. mix.p_loop_long in
  let threshold_5 = threshold_4 +. mix.p_random in
  if r < threshold_1 then biased ()
  else if r < threshold_2 then
    Behavior.Periodic { pattern = periodic_pattern ctx ~period:(2 + Rng.int ctx.rng 7) }
  else if r < threshold_3 then
    Behavior.Periodic { pattern = periodic_pattern ctx ~period:(24 + Rng.int ctx.rng 137) }
  else if r < threshold_4 then Behavior.Loop_trip { trips = 24 + Rng.int ctx.rng 377 }
  else if r < threshold_5 then
    Behavior.Bernoulli { p_taken = 0.25 +. Rng.float ctx.rng 0.5 }
  else
    match ctx.labels with
    | [] -> biased ()
    | labels ->
        let src = List.nth labels (Rng.int ctx.rng (List.length labels)) in
        Behavior.Correlated
          { src; invert = Rng.bool ctx.rng; noise = Rng.float ctx.rng 0.02 }

let branch_blob ctx ~mix ~n ~work =
  if n < 1 then invalid_arg "Toolkit.branch_blob: n < 1";
  List.concat
    (List.init n (fun _ ->
         let behavior = gen_behavior ctx mix in
         let label = fresh_label ctx in
         let stmt =
           B.if_ ~label behavior
             [ B.work (1 + Rng.int ctx.rng (max 1 work)) ]
             [ B.work (1 + Rng.int ctx.rng (max 1 (work / 2 + 1))) ]
         in
         ctx.labels <- label :: (if List.length ctx.labels > 24 then List.filteri (fun i _ -> i < 24) ctx.labels else ctx.labels);
         [ B.work (1 + Rng.int ctx.rng (max 1 work)); stmt ]))

let loop_nest _ctx ~trips ~body =
  List.fold_left (fun inner t -> [ B.for_ ~trips:t inner ]) body (List.rev trips)

let chase_kernel ctx ~site ~steps ~work ~extra =
  [
    B.for_ ~trips:steps
      ([ B.load_heap site (B.chase ~seed:(Rng.int ctx.rng 1_000_000 + 1)); B.work (max 1 work) ]
      @ extra);
  ]

let stream_kernel ctx ~global ~stride ~trips ~work ~store_every =
  ignore ctx;
  let body =
    [ B.load_global global (B.seq ~stride); B.work (max 1 work) ]
    @
    if store_every > 0 then
      [
        B.if_
          (Behavior.Periodic { pattern = Array.init store_every (fun i -> i = 0) })
          [ B.store_global global (B.seq ~stride:(stride * store_every)) ]
          [ B.work 1 ];
      ]
    else []
  in
  [ B.for_ ~trips body ]

let proc_pool ctx ~obj ~prefix ~n ~body =
  Array.init n (fun i -> B.proc ctx.builder ~obj ~name:(Printf.sprintf "%s_%d" prefix i) (body i))

let round_robin_objects ctx ~prefix ~n =
  Array.init n (fun i -> B.add_object ctx.builder (Printf.sprintf "%s%d.o" prefix i))

let spread_pool ctx ~objs ~prefix ~n ~body =
  if Array.length objs = 0 then invalid_arg "Toolkit.spread_pool: no objects";
  Array.init n (fun i ->
      let obj = objs.(i mod Array.length objs) in
      B.proc ctx.builder ~obj ~name:(Printf.sprintf "%s_%d" prefix i) (body i))

let call_all procs = Array.to_list (Array.map B.call procs)

let guard_pool ctx ~objs ~prefix ~procs ~branches_per =
  (* Aliasing within one procedure is layout-invariant (relative offsets are
     fixed at compile time); only branches in *different* procedures change
     their collision pattern under reordering. A tournament predictor also
     heals purely deterministic collisions (whichever component is
     conflict-free wins the chooser), so the guards carry rare data-driven
     flips: each flip perturbs the global history, multiplying the
     (pc, history) footprint until collisions land in both components —
     which is where placement sensitivity comes from on real machines. *)
  spread_pool ctx ~objs ~prefix ~n:procs ~body:(fun i ->
      List.concat
        (List.init
           (branches_per + (i mod 3))
           (fun _ ->
             let behavior =
               if Rng.float ctx.rng 1.0 < 0.5 then
                 if Rng.bool ctx.rng then Behavior.Always_taken else Behavior.Never_taken
               else Behavior.Bernoulli { p_taken =
                 (let p = 0.90 +. Rng.float ctx.rng 0.08 in
                  if Rng.bool ctx.rng then p else 1.0 -. p) }
             in
             [ B.work 2; B.if_ ~label:(fresh_label ctx) behavior [ B.work 2 ] [ B.work 1 ] ])))

let dispatch_loop _ctx ~trips ~selector ~callees ~per_iter =
  [ B.for_ ~trips (per_iter @ [ B.icall selector callees ]) ]

let bytecode_stream ctx ~n_targets ~length ~hot_fraction =
  if n_targets < 1 then invalid_arg "Toolkit.bytecode_stream: no targets";
  if length < 1 then invalid_arg "Toolkit.bytecode_stream: empty stream";
  (* Opcode streams repeat and are dominated by a few hot opcodes appearing
     in runs, which is what lets a BTB predict a useful share of an
     interpreter's indirect calls. *)
  let n_hot = max 1 (int_of_float (hot_fraction *. float_of_int n_targets)) in
  let stream = Array.make length 0 in
  let i = ref 0 in
  while !i < length do
    let target =
      if Rng.float ctx.rng 1.0 < 0.8 then Rng.int ctx.rng n_hot else Rng.int ctx.rng n_targets
    in
    let run = 1 + Rng.int ctx.rng 4 in
    let stop = min length (!i + run) in
    while !i < stop do
      stream.(!i) <- target;
      incr i
    done
  done;
  Behavior.Selector.Periodic_targets stream
