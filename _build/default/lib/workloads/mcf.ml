(* 429.mcf stand-in: single-depot vehicle scheduling via network simplex.
   The defining behaviour is a pointer chase over an arc/node graph far
   larger than the last-level cache, so nearly every step stalls on memory:
   the paper measures CPI 4.68, by far the highest in the suite, with only a
   weak (but significant) branch component. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "429.mcf"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"mcf" ~n:3 in
  (* 320k nodes x 64B = 20MB: three times the modelled L2 slice, so the
     chase misses all the way to memory in steady state. *)
  let arcs = B.heap_site b ~name:"arcs" ~obj_size:64 ~count:327_680 in
  let nodes = B.heap_site b ~name:"nodes" ~obj_size:64 ~count:65_536 in
  let basket = B.global b ~name:"basket" ~size:8192 in
  let price_arcs =
    B.proc b ~obj:objs.(0) ~name:"price_out_impl"
      (chase_kernel ctx ~site:arcs ~steps:36 ~work:27
         ~extra:
           (branch_blob ctx ~mix:easy_mix ~n:1 ~work:3
           @ [ B.load_global basket (B.seq ~stride:16) ]))
  in
  let refresh_potentials =
    B.proc b ~obj:objs.(1) ~name:"refresh_potential"
      (chase_kernel ctx ~site:nodes ~steps:18 ~work:14
         ~extra:(branch_blob ctx ~mix:easy_mix ~n:1 ~work:2))
  in
  let primal_iminus =
    B.proc b ~obj:objs.(2) ~name:"primal_iminus"
      ([ B.load_global basket B.rand_access; B.work 8 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:5)
  in
  let arc_status_checks = guard_pool ctx ~objs ~prefix:"arc_status" ~procs:28 ~branches_per:7 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 95)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:5
          @ call_all arc_status_checks
          @ [ B.call price_arcs; B.call refresh_potentials; B.call primal_iminus ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Network simplex: 20MB pointer chase, memory-latency bound (highest CPI)";
    expect_significant = true;
    build;
  }
