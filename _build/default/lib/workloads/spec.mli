(** Benchmark registry.

    The paper compiles 23 of the 29 SPEC CPU 2006 benchmarks under its
    infrastructure; 20 of them show statistically significant CPI~MPKI
    correlation (Table 1) and 3 do not. The MASE simulator study (Section 3,
    Figures 4 and 5) additionally uses SPEC CPU 2000 benchmarks. This module
    mirrors those populations with the stand-in generators. *)

val all_2006 : unit -> Bench.t list
(** The 23 benchmarks that "compile and run" — the native-measurement
    population of the paper. *)

val table1_2006 : unit -> Bench.t list
(** The 20 expected to pass the significance test (Table 1 rows). *)

val simulation_suite : unit -> Bench.t list
(** The 31 benchmarks of the simulator linearity study: the 23 above plus
    458.sjeng and seven SPEC CPU 2000 stand-ins (including 252.eon and
    178.galgel, the visibly non-linear pair). *)

val extended_2000 : unit -> Bench.t list
(** Additional SPEC CPU 2000 stand-ins beyond the paper's study population,
    available to tool users (vortex, gap, mesa, equake, ammp, art). *)

val everything : unit -> Bench.t list
(** The full registry: simulation suite plus the extended set. *)

val find : string -> Bench.t
(** Look up by exact name (e.g. ["400.perlbench"]); raises [Not_found]. *)

val names : Bench.t list -> string list

val default_scale : int
(** Scale used by the experiment harness: traces of a few hundred thousand
    blocks. *)
