(* 473.astar stand-in: A* pathfinding over large game maps. Pointer-heavy
   open-list manipulation over a region array bigger than L2 plus genuinely
   data-dependent direction choices: high CPI (2.37) and the paper's
   correlation example (r = 0.80 between MPKI and CPI). *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "473.astar"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"astar" ~n:4 in
  (* Way-point graph: 10MB, chased along paths. *)
  let regions = B.heap_site b ~name:"regions" ~obj_size:80 ~count:4_096 in
  let open_list = B.heap_site b ~name:"open_list" ~obj_size:48 ~count:4096 in
  let map_flags = B.global b ~name:"map_flags" ~size:(2 * 1024 * 1024) in
  let expand_node =
    B.proc b ~obj:objs.(0) ~name:"regwayobj_makebound2"
      (chase_kernel ctx ~site:regions ~steps:6 ~work:10
         ~extra:
           (branch_blob ctx ~mix:hard_mix ~n:2 ~work:3
           @ [ B.load_global map_flags B.rand_access ]))
  in
  let update_open_list =
    B.proc b ~obj:objs.(1) ~name:"way2obj_releasepoint"
      ([ B.load_heap open_list B.rand_access; B.work 5 ]
      @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:3
      @ [ B.store_heap open_list B.rand_access ])
  in
  let heuristic =
    B.proc b ~obj:objs.(2) ~name:"heuristic"
      (branch_blob ctx ~mix:hard_mix ~n:3 ~work:4 @ [ B.work 6; B.mul_work 1 ])
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 300)
          (branch_blob ctx ~mix:easy_mix ~n:1 ~work:3
          @ [ B.call expand_node; B.call heuristic; B.call update_open_list ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "A* pathfinding: graph chases beyond L2, data-dependent turns (r=0.80)";
    expect_significant = true;
    build;
  }
