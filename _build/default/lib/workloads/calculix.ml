(* 454.calculix stand-in: finite-element structural mechanics. The paper's
   Figure 3 benchmark: with heap randomization on top of code reordering its
   CPI varies linearly with L1 and L2 miss counts. The stand-in allocates
   many same-size element blocks — the layout-conflict-prone pattern — and
   alternates solver sweeps with gather/scatter assembly. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "454.calculix"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"ccx" ~n:5 in
  (* Two placement-sensitive working sets built from SMALL blocks (a few
     cache lines each, so randomized placement makes per-set occupancy
     genuinely lumpy): the element blocks straddle the L1D capacity
     (360 x 192B ~ 68KB vs 32KB) and the stiffness blocks sit against the
     effective L2 slice while a solver stream keeps pressing on them
     (500 x 4KB ~ 2MB + an 8MB right-hand-side stream vs 4MB). Which sets
     overflow is decided by placement, so L1D and L2 miss counts vary run
     to run — the Figure 3 signal. *)
  let element_blocks = B.heap_site b ~name:"elements" ~obj_size:192 ~count:96 in
  let stiffness = B.heap_site b ~name:"stiffness" ~obj_size:4032 ~count:500 in
  (* assembly and solve alternate: elements own the L1D during assembly,
     the solver stream owns it during solve *)
  let rhs_stream = B.global b ~name:"rhs_stream" ~size:(8 * 1024 * 1024) in
  let solution = B.global b ~name:"solution" ~size:(96 * 1024) in
  let assemble =
    B.proc b ~obj:objs.(0) ~name:"mafillsm"
      [
        B.for_ ~trips:150
          ([
             B.load_heap element_blocks B.rand_access;
             B.fp_work 3;
             B.load_heap element_blocks B.rand_access;
             B.work 3;
             B.load_heap element_blocks B.rand_access;
             B.fp_work 3;
             B.if_
               (Behavior.Periodic { pattern = [| true; false; false; false |] })
               [ B.store_heap element_blocks B.rand_access ]
               [ B.load_heap element_blocks B.rand_access; B.fp_work 2 ];
           ]
          @ branch_blob ctx ~mix:fp_mix ~n:1 ~work:2);
      ]
  in
  let solve_sweep =
    B.proc b ~obj:objs.(1) ~name:"sgi_solve"
      [
        B.for_ ~trips:120
          [
            B.load_heap stiffness (B.seq ~stride:64);
            B.fp_work 6;
            B.load_global rhs_stream (B.seq ~stride:64);
            B.load_global solution (B.seq ~stride:16);
            B.store_global solution (B.seq ~stride:16);
          ];
      ]
  in
  let stress_recovery =
    B.proc b ~obj:objs.(2) ~name:"results"
      [
        B.for_ ~trips:40
          ([ B.load_heap element_blocks (B.seq ~stride:32); B.fp_work 8 ]
          @ branch_blob ctx ~mix:fp_mix ~n:2 ~work:3);
      ]
  in
  let element_dispatch = guard_pool ctx ~objs ~prefix:"element_kind" ~procs:26 ~branches_per:7 in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 56)
          (branch_blob ctx ~mix:fp_mix ~n:2 ~work:3
          @ call_all element_dispatch
          @ [ B.call assemble; B.call solve_sweep; B.call stress_recovery ]);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Finite elements: same-size heap blocks, cache-conflict sensitive (Fig 3)";
    expect_significant = true;
    build;
  }
