(* 403.gcc stand-in: an optimizing compiler. The distinguishing features are
   a very large instruction footprint (hundreds of procedures, several times
   the L1I capacity, so code placement causes real instruction-cache
   conflicts), pass-structured phase behaviour, and pointer-heavy IR
   traversals. The paper measures CPI ~1.9 with clear branch correlation. *)

open Toolkit
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior

let name = "403.gcc"

let build ~scale =
  let ctx = make_ctx ~name ~scale in
  let b = ctx.builder in
  let objs = round_robin_objects ctx ~prefix:"gcc" ~n:16 in
  let ir_nodes = B.heap_site b ~name:"rtl_nodes" ~obj_size:96 ~count:10240 in
  let symbol_table = B.heap_site b ~name:"symtab" ~obj_size:64 ~count:4096 in
  let string_pool = B.global b ~name:"strings" ~size:(256 * 1024) in
  (* A wide pool of pass helpers gives gcc a hot code footprint well past the 32KB L1I. *)
  let pass_helpers =
    spread_pool ctx ~objs ~prefix:"pass" ~n:100 ~body:(fun i ->
        let memory =
          match i mod 4 with
          | 0 -> [ B.load_heap ir_nodes (B.chase ~seed:(1000 + i)) ]
          | 1 -> [ B.load_heap symbol_table B.rand_access ]
          | 2 -> [ B.load_global string_pool B.rand_access ]
          | _ -> [ B.load_heap ir_nodes B.rand_access ]
        in
        branch_blob ctx ~mix:patterned_mix ~n:(4 + (i mod 4)) ~work:4
        @ memory
        @ branch_blob ctx ~mix:easy_mix ~n:(3 + (i mod 3)) ~work:3)
  in
  let walk_ir =
    B.proc b ~obj:objs.(0) ~name:"walk_ir"
      [
        B.for_ ~trips:24
          ([ B.load_heap ir_nodes (B.chase ~seed:7) ]
          @ branch_blob ctx ~mix:patterned_mix ~n:3 ~work:3);
      ]
  in
  let n_helpers = Array.length pass_helpers in
  let phase_procs =
    Array.init 6 (fun phase ->
        (* Each compilation phase touches a different (overlapping) slice of
           the helper pool: phase-structured I-cache behaviour. *)
        let slice =
          Array.init 18 (fun k -> pass_helpers.((phase * 17 + (k * 7)) mod n_helpers))
        in
        B.proc b ~obj:objs.(phase mod 16) ~name:(Printf.sprintf "phase_%d" phase)
          (branch_blob ctx ~mix:easy_mix ~n:4 ~work:3
          @ [ B.call walk_ir ]
          @ call_all slice))
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main"
      [
        B.for_ ~trips:(scale * 15)
          (branch_blob ctx ~mix:easy_mix ~n:2 ~work:4 @ call_all phase_procs);
      ]
  in
  B.entry b main;
  B.finish b

let spec =
  {
    Bench.name;
    suite = Bench.Cpu2006;
    description = "Optimizing compiler: huge code footprint, IR pointer walks, phase behaviour";
    expect_significant = true;
    build;
  }
