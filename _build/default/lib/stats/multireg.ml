type t = {
  coefficients : float array;
  intercept : float;
  n : int;
  k : int;
  r_squared : float;
  adjusted_r_squared : float;
  residual_standard_error : float;
  f_statistic : float;
  f_p_value : float;
  coefficient_standard_errors : float array;
}

let fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Multireg.fit: length mismatch";
  if n = 0 then invalid_arg "Multireg.fit: empty";
  let k = Array.length xs.(0) in
  if k = 0 then invalid_arg "Multireg.fit: no predictors";
  if n <= k + 1 then invalid_arg "Multireg.fit: need n > k + 1";
  (* Design matrix with leading intercept column. *)
  let design =
    Matrix.of_rows
      (Array.map
         (fun row ->
           if Array.length row <> k then invalid_arg "Multireg.fit: ragged predictors";
           Array.append [| 1.0 |] row)
         xs)
  in
  let xt = Matrix.transpose design in
  let xtx = Matrix.mul xt design in
  let xty = Matrix.mul_vec xt ys in
  (* Tiny ridge for numerical robustness when predictors are collinear in a
     degenerate sample; it does not measurably bias well-posed fits. *)
  let p = k + 1 in
  for i = 0 to p - 1 do
    Matrix.set xtx i i (Matrix.get xtx i i *. (1.0 +. 1e-12))
  done;
  let beta = Matrix.solve_spd xtx xty in
  let predict_row row =
    let acc = ref beta.(0) in
    for j = 0 to k - 1 do
      acc := !acc +. (beta.(j + 1) *. row.(j))
    done;
    !acc
  in
  let y_mean = Descriptive.mean ys in
  let ss_total = ref 0.0 and ss_residual = ref 0.0 in
  for i = 0 to n - 1 do
    let dy = ys.(i) -. y_mean in
    ss_total := !ss_total +. (dy *. dy);
    let e = ys.(i) -. predict_row xs.(i) in
    ss_residual := !ss_residual +. (e *. e)
  done;
  let df_residual = n - k - 1 in
  let r2 = if !ss_total <= 0.0 then 0.0 else 1.0 -. (!ss_residual /. !ss_total) in
  let r2 = Float.max 0.0 r2 in
  let adj_r2 =
    1.0 -. ((1.0 -. r2) *. float_of_int (n - 1) /. float_of_int df_residual)
  in
  let mse = !ss_residual /. float_of_int df_residual in
  let f =
    if !ss_residual <= 1e-300 then infinity
    else (!ss_total -. !ss_residual) /. float_of_int k /. mse
  in
  let f_p =
    if not (Float.is_finite f) then 0.0
    else if f <= 0.0 then 1.0
    else
      Distributions.F_dist.survival ~df1:(float_of_int k)
        ~df2:(float_of_int df_residual) f
  in
  let xtx_inv = Matrix.inverse_spd xtx in
  let ses =
    Array.init k (fun j -> sqrt (Float.max 0.0 (mse *. Matrix.get xtx_inv (j + 1) (j + 1))))
  in
  {
    coefficients = Array.sub beta 1 k;
    intercept = beta.(0);
    n;
    k;
    r_squared = r2;
    adjusted_r_squared = adj_r2;
    residual_standard_error = sqrt mse;
    f_statistic = f;
    f_p_value = f_p;
    coefficient_standard_errors = ses;
  }

let predict m row =
  if Array.length row <> m.k then invalid_arg "Multireg.predict: wrong arity";
  let acc = ref m.intercept in
  for j = 0 to m.k - 1 do
    acc := !acc +. (m.coefficients.(j) *. row.(j))
  done;
  !acc

let significant ?(alpha = 0.05) m = m.f_p_value <= alpha

let pp ppf m =
  Format.fprintf ppf "y = %.5f" m.intercept;
  Array.iteri (fun j c -> Format.fprintf ppf " + %.5f x%d" c (j + 1)) m.coefficients;
  Format.fprintf ppf "  (n=%d, R2=%.3f, F=%.3g, p=%.3g)" m.n m.r_squared m.f_statistic
    m.f_p_value
