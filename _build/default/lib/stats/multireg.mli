(** Multiple linear regression with an overall F-test.

    The paper's "combined model" regresses CPI on branch MPKI, L1
    instruction-cache MPKI and L2 MPKI simultaneously, and judges its
    significance with the F-test (the t-test only applies to single-variable
    models). *)

type t = {
  coefficients : float array;  (** beta_1 .. beta_k, one per predictor *)
  intercept : float;
  n : int;
  k : int;  (** number of predictors *)
  r_squared : float;
  adjusted_r_squared : float;
  residual_standard_error : float;
  f_statistic : float;
  f_p_value : float;  (** of H0: all coefficients are 0 *)
  coefficient_standard_errors : float array;
}

val fit : float array array -> float array -> t
(** [fit xs ys]: [xs.(i)] is the predictor row for observation [i]. Requires
    [n > k + 1] and a well-conditioned design (raises [Failure] via Cholesky
    otherwise). *)

val predict : t -> float array -> float

val significant : ?alpha:float -> t -> bool
(** F-test at [alpha] (default 0.05). *)

val pp : Format.formatter -> t -> unit
