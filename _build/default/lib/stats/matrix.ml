type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: nonpositive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols
let index m i j = (i * m.cols) + j

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get: out of bounds";
  m.data.(index m i j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.set: out of bounds";
  m.data.(index m i j) <- v

let of_rows rs =
  let nrows = Array.length rs in
  if nrows = 0 then invalid_arg "Matrix.of_rows: empty";
  let ncols = Array.length rs.(0) in
  let m = create ~rows:nrows ~cols:ncols in
  Array.iteri
    (fun i row ->
      if Array.length row <> ncols then invalid_arg "Matrix.of_rows: ragged rows";
      Array.iteri (fun j v -> m.data.(index m i j) <- v) row)
    rs;
  m

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.(index m i i) <- 1.0
  done;
  m

let transpose m =
  let r = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      r.data.(index r j i) <- m.data.(index m i j)
    done
  done;
  r

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let r = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.(index a i k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          r.data.(index r i j) <- r.data.(index r i j) +. (aik *. b.data.(index b k j))
        done
    done
  done;
  r

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(index a i j) *. v.(j))
      done;
      !acc)

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Matrix.cholesky: not square";
  let n = a.rows in
  let l = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then failwith "Matrix.cholesky: not positive definite";
        set l i j (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let solve_cholesky l b =
  let n = l.rows in
  if Array.length b <> n then invalid_arg "Matrix.solve_cholesky: dimension mismatch";
  (* Forward substitution: L y = b. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (get l i k *. y.(k))
    done;
    y.(i) <- !s /. get l i i
  done;
  (* Back substitution: L^T x = y. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (get l k i *. x.(k))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let solve_spd a b = solve_cholesky (cholesky a) b

let inverse_spd a =
  let n = a.rows in
  let l = cholesky a in
  let inv = create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve_cholesky l e in
    for i = 0 to n - 1 do
      set inv i j col.(i)
    done
  done;
  inv

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " ]@."
  done
