(** Small dense matrices for the multi-linear regression normal equations.

    Row-major, sized at creation. Only the operations the statistics layer
    needs are provided; this is not a general linear-algebra library. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val of_rows : float array array -> t
(** Copies; all rows must have equal length. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array

val cholesky : t -> t
(** Lower-triangular L with L L^T = A for a symmetric positive-definite A.
    Raises [Failure] if A is not positive definite. *)

val solve_cholesky : t -> float array -> float array
(** [solve_cholesky l b] solves [L L^T x = b] given the factor from
    {!cholesky}. *)

val solve_spd : t -> float array -> float array
(** Solve [A x = b] for symmetric positive-definite A. *)

val inverse_spd : t -> t
(** Inverse of a symmetric positive-definite matrix via Cholesky. *)

val pp : Format.formatter -> t -> unit
