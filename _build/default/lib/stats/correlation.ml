let check_paired name xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg (name ^ ": length mismatch");
  if n < 2 then invalid_arg (name ^ ": need >= 2 points");
  n

let pearson_r xs ys =
  let n = check_paired "Correlation.pearson_r" xs ys in
  let nf = float_of_int n in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  ignore nf;
  if !sxx <= 0.0 || !syy <= 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let r_squared xs ys =
  let r = pearson_r xs ys in
  r *. r

type t_test_result = {
  r : float;
  t_statistic : float;
  degrees_of_freedom : int;
  p_value : float;
  significant : bool;
}

let correlation_t_test ?(alpha = 0.05) xs ys =
  let n = check_paired "Correlation.correlation_t_test" xs ys in
  if n < 3 then invalid_arg "Correlation.correlation_t_test: need >= 3 points";
  let r = pearson_r xs ys in
  let df = n - 2 in
  let denom = 1.0 -. (r *. r) in
  let t =
    if denom <= 1e-12 then (if r >= 0.0 then infinity else neg_infinity)
    else r *. sqrt (float_of_int df /. denom)
  in
  let p =
    if not (Float.is_finite t) then 0.0
    else Distributions.Student_t.two_sided_p ~df:(float_of_int df) t
  in
  { r; t_statistic = t; degrees_of_freedom = df; p_value = p; significant = p <= alpha }
