type t = { sample : float array; bandwidth : float }

let silverman xs =
  let n = Array.length xs in
  if n < 2 then 1e-3
  else
    let sd = Descriptive.stddev xs in
    let iqr = Descriptive.quantile xs 0.75 -. Descriptive.quantile xs 0.25 in
    let spread =
      if iqr > 0.0 then Float.min sd (iqr /. 1.34)
      else if sd > 0.0 then sd
      else 0.0
    in
    let h = 0.9 *. spread *. (float_of_int n ** -0.2) in
    Float.max h 1e-6

let fit ?bandwidth xs =
  if Array.length xs = 0 then invalid_arg "Density.fit: empty sample";
  let bandwidth =
    match bandwidth with
    | Some h when h > 0.0 -> h
    | Some _ -> invalid_arg "Density.fit: bandwidth must be positive"
    | None -> silverman xs
  in
  { sample = Array.copy xs; bandwidth }

let bandwidth t = t.bandwidth

let evaluate t x =
  let h = t.bandwidth in
  let n = float_of_int (Array.length t.sample) in
  let acc = ref 0.0 in
  Array.iter
    (fun xi ->
      let z = (x -. xi) /. h in
      acc := !acc +. exp (-0.5 *. z *. z))
    t.sample;
  !acc /. (n *. h *. sqrt (2.0 *. Float.pi))

let curve t ?(points = 101) ~lo ~hi () =
  if points < 2 then invalid_arg "Density.curve: need >= 2 points";
  if hi <= lo then invalid_arg "Density.curve: hi <= lo";
  let step = (hi -. lo) /. float_of_int (points - 1) in
  Array.init points (fun i ->
      let x = lo +. (step *. float_of_int i) in
      (x, evaluate t x))
