(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input (and on
    too-short input where a sample variance is required). *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); needs at least 2 points. *)

val stddev : float array -> float

val median : float array -> float
(** Does not mutate its argument. Even-length arrays average the two
    central order statistics. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [\[0,1\]], linear interpolation between order
    statistics (type-7, the R default). *)

val min_max : float array -> float * float

val sum : float array -> float

val percent_difference_from_mean : float array -> float array
(** [percent_difference_from_mean xs] maps each observation to
    [100 * (x - mean) / mean], the quantity plotted in the paper's Figure 1
    violin plots. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
