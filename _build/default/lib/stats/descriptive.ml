let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  if Array.length xs < 2 then invalid_arg "Descriptive.variance: need >= 2 points";
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs - 1)

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let quantile xs p =
  check_nonempty "Descriptive.quantile" xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p out of [0,1]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let median xs = quantile xs 0.5

let min_max xs =
  check_nonempty "Descriptive.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percent_difference_from_mean xs =
  let m = mean xs in
  if Float.abs m < 1e-300 then invalid_arg "Descriptive.percent_difference_from_mean: zero mean";
  Array.map (fun x -> 100.0 *. (x -. m) /. m) xs

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = (if Array.length xs >= 2 then stddev xs else 0.0);
    min = lo;
    q1 = quantile xs 0.25;
    median = median xs;
    q3 = quantile xs 0.75;
    max = hi;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.q1 s.median s.q3 s.max
