type interval = { lower : float; estimate : float; upper : float }

let percentile_interval ~level ~estimate samples =
  Array.sort compare samples;
  let alpha = (1.0 -. level) /. 2.0 in
  {
    lower = Descriptive.quantile samples alpha;
    estimate;
    upper = Descriptive.quantile samples (1.0 -. alpha);
  }

let mean_interval ?(replicates = 1000) ?(level = 0.95) ~seed xs =
  if Array.length xs < 2 then invalid_arg "Bootstrap.mean_interval: need >= 2 points";
  let rng = Rng.create seed in
  let n = Array.length xs in
  let samples =
    Array.init replicates (fun _ ->
        let acc = ref 0.0 in
        for _ = 1 to n do
          acc := !acc +. xs.(Rng.int rng n)
        done;
        !acc /. float_of_int n)
  in
  percentile_interval ~level ~estimate:(Descriptive.mean xs) samples

let regression_intervals ?(replicates = 1000) ?(level = 0.95) ~seed xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Bootstrap.regression_intervals: length mismatch";
  if n < 3 then invalid_arg "Bootstrap.regression_intervals: need >= 3 points";
  let base = Linreg.fit xs ys in
  let rng = Rng.create seed in
  let slopes = ref [] and intercepts = ref [] in
  let bx = Array.make n 0.0 and by = Array.make n 0.0 in
  let produced = ref 0 in
  let attempts = ref 0 in
  while !produced < replicates && !attempts < replicates * 3 do
    incr attempts;
    for i = 0 to n - 1 do
      let j = Rng.int rng n in
      bx.(i) <- xs.(j);
      by.(i) <- ys.(j)
    done;
    (* A resample can be degenerate in x; skip those draws. *)
    match Linreg.fit bx by with
    | m ->
        slopes := m.Linreg.slope :: !slopes;
        intercepts := m.Linreg.intercept :: !intercepts;
        incr produced
    | exception Invalid_argument _ -> ()
  done;
  if !produced = 0 then invalid_arg "Bootstrap.regression_intervals: all resamples degenerate";
  ( percentile_interval ~level ~estimate:base.Linreg.slope (Array.of_list !slopes),
    percentile_interval ~level ~estimate:base.Linreg.intercept (Array.of_list !intercepts) )
