(** Rank-based statistics: robustness companions to Pearson/OLS.

    Spearman's rho answers "is the CPI~MPKI relation monotone?" without the
    linearity assumption the paper verifies by simulation; comparing it
    with Pearson's r is a quick sanity check that outlier layouts are not
    manufacturing the correlation. The one-way ANOVA F-test supports
    experiments that compare groups of layouts (e.g. bump vs randomized
    heap). *)

val ranks : float array -> float array
(** Average ranks (1-based); ties share the mean of their rank span. *)

val spearman_rho : float array -> float array -> float
(** Pearson correlation of the rank vectors. *)

val spearman_test : ?alpha:float -> float array -> float array -> Correlation.t_test_result
(** t-test on rho with n-2 degrees of freedom (the usual large-sample
    approximation). *)

type anova = {
  f_statistic : float;
  df_between : int;
  df_within : int;
  p_value : float;
}

val one_way_anova : float array array -> anova
(** [one_way_anova groups] tests H0: all group means equal. Needs >= 2
    groups, each with >= 2 observations. *)
