type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let hash_string s =
  (* FNV-1a over the bytes of [s]. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let named_stream t name = { state = mix (Int64.logxor t.state (hash_string name)) }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t =
  (* Box–Muller; we discard the second deviate to keep the stream simple
     under [split]/[copy]. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 1e-300 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 1e-300 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
