(** Probability distributions used by the regression machinery.

    We need the Student-t distribution for confidence/prediction intervals
    and correlation t-tests, the F distribution for the multi-linear model's
    significance test, and the normal distribution for noise modelling and
    kernel density work. Everything is implemented from scratch on top of
    the log-gamma function and the regularized incomplete beta/gamma
    functions, so no external numerics dependency is required. *)

val log_gamma : float -> float
(** Lanczos approximation; accurate to ~1e-13 for positive arguments. *)

val regularized_incomplete_beta : a:float -> b:float -> x:float -> float
(** I_x(a,b) via the Lentz continued fraction; [x] in [\[0,1\]]. *)

val regularized_lower_gamma : a:float -> x:float -> float
(** P(a,x), series for small [x], continued fraction otherwise. *)

module Normal : sig
  val pdf : ?mean:float -> ?sigma:float -> float -> float
  val cdf : ?mean:float -> ?sigma:float -> float -> float

  val quantile : ?mean:float -> ?sigma:float -> float -> float
  (** Acklam's rational approximation refined with one Halley step. *)
end

module Student_t : sig
  val cdf : df:float -> float -> float

  val survival : df:float -> float -> float
  (** [survival ~df t] = 1 - cdf, computed without cancellation. *)

  val quantile : df:float -> float -> float
  (** Inverse CDF by bisection+Newton on [cdf]; used for the 95%
      confidence/prediction interval multipliers. *)

  val two_sided_p : df:float -> float -> float
  (** p-value of a two-sided t-test given the observed statistic. *)
end

module F_dist : sig
  val cdf : df1:float -> df2:float -> float -> float

  val survival : df1:float -> df2:float -> float -> float
  (** Upper tail; the p-value of an observed F statistic. *)
end

module Chi2 : sig
  val cdf : df:float -> float -> float
end
