(* Special functions. References: Press et al., "Numerical Recipes", 3rd ed.,
   sections 6.1-6.4; Acklam's inverse-normal note (2003). *)

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Distributions.log_gamma: nonpositive argument";
  (* Lanczos, g = 7, n = 9. *)
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_positive (1.0 -. x) coefficients
  else log_gamma_positive x coefficients

and log_gamma_positive x coefficients =
  let x = x -. 1.0 in
  let acc = ref coefficients.(0) in
  for i = 1 to 8 do
    acc := !acc +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  let t = x +. 7.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

(* Continued fraction for the incomplete beta function (NR betacf). *)
let beta_continued_fraction ~a ~b ~x =
  let fpmin = 1e-300 and eps = 3e-14 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= 300 do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then continue := false;
    incr m
  done;
  !h

let regularized_incomplete_beta ~a ~b ~x =
  if a <= 0.0 || b <= 0.0 then invalid_arg "regularized_incomplete_beta: a,b must be positive";
  if x < 0.0 || x > 1.0 then invalid_arg "regularized_incomplete_beta: x out of [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else
    let front =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. beta_continued_fraction ~a ~b ~x /. a
    else 1.0 -. (front *. beta_continued_fraction ~a:b ~b:a ~x:(1.0 -. x) /. b)

let regularized_lower_gamma ~a ~x =
  if a <= 0.0 then invalid_arg "regularized_lower_gamma: a must be positive";
  if x < 0.0 then invalid_arg "regularized_lower_gamma: x must be nonnegative";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* Series representation. *)
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    let n = ref 0 in
    while !n < 500 && Float.abs !del >= Float.abs !sum *. 3e-14 do
      ap := !ap +. 1.0;
      del := !del *. x /. !ap;
      sum := !sum +. !del;
      incr n
    done;
    !sum *. exp (-.x +. (a *. log x) -. log_gamma a)
  end
  else begin
    (* Continued fraction for Q(a,x), then P = 1 - Q. *)
    let fpmin = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. fpmin) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    let i = ref 1 in
    let continue = ref true in
    while !continue && !i <= 500 do
      let fi = float_of_int !i in
      let an = -.fi *. (fi -. a) in
      b := !b +. 2.0;
      d := (an *. !d) +. !b;
      if Float.abs !d < fpmin then d := fpmin;
      c := !b +. (an /. !c);
      if Float.abs !c < fpmin then c := fpmin;
      d := 1.0 /. !d;
      let del = !d *. !c in
      h := !h *. del;
      if Float.abs (del -. 1.0) < 3e-14 then continue := false;
      incr i
    done;
    1.0 -. (exp (-.x +. (a *. log x) -. log_gamma a) *. !h)
  end

module Normal = struct
  let pdf ?(mean = 0.0) ?(sigma = 1.0) x =
    let z = (x -. mean) /. sigma in
    exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))

  (* erf via its relation to the regularized lower incomplete gamma. *)
  let erf x =
    let v = regularized_lower_gamma ~a:0.5 ~x:(x *. x) in
    if x >= 0.0 then v else -.v

  let cdf ?(mean = 0.0) ?(sigma = 1.0) x =
    let z = (x -. mean) /. (sigma *. sqrt 2.0) in
    0.5 *. (1.0 +. erf z)

  (* Acklam's rational approximation to the inverse normal CDF. *)
  let quantile_std p =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Normal.quantile: p out of (0,1)";
    let a =
      [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
         1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
    and b =
      [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
         6.680131188771972e+01; -1.328068155288572e+01 |]
    and c =
      [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
         -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
    and d =
      [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
         3.754408661907416e+00 |]
    in
    let p_low = 0.02425 in
    let x =
      if p < p_low then begin
        let q = sqrt (-2.0 *. log p) in
        (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
        +. c.(5)
        |> fun num ->
        num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
      else if p <= 1.0 -. p_low then begin
        let q = p -. 0.5 in
        let r = q *. q in
        (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
        +. a.(5))
        *. q
        /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
           +. 1.0)
      end
      else begin
        let q = sqrt (-2.0 *. log (1.0 -. p)) in
        -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
           +. c.(5))
        /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
    in
    (* One Halley refinement step. *)
    let e = cdf x -. p in
    let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
    x -. (u /. (1.0 +. (x *. u /. 2.0)))

  let quantile ?(mean = 0.0) ?(sigma = 1.0) p = mean +. (sigma *. quantile_std p)
end

module Student_t = struct
  let survival ~df t =
    if df <= 0.0 then invalid_arg "Student_t: df must be positive";
    let x = df /. (df +. (t *. t)) in
    let tail = 0.5 *. regularized_incomplete_beta ~a:(df /. 2.0) ~b:0.5 ~x in
    if t >= 0.0 then tail else 1.0 -. tail

  let cdf ~df t = 1.0 -. survival ~df t

  let two_sided_p ~df t = 2.0 *. survival ~df (Float.abs t)

  let quantile ~df p =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Student_t.quantile: p out of (0,1)";
    if p = 0.5 then 0.0
    else begin
      (* Start from the normal quantile, polish by bisection on the CDF.
         The CDF is monotone, so plain bisection is robust for all df. *)
      let target = p in
      let guess = Normal.quantile target in
      let rec widen lo hi =
        if cdf ~df lo <= target && cdf ~df hi >= target then (lo, hi)
        else widen (2.0 *. lo) (2.0 *. hi)
      in
      let lo0 = Float.min (guess -. 1.0) (-2.0) *. 4.0
      and hi0 = Float.max (guess +. 1.0) 2.0 *. 4.0 in
      let lo, hi = widen lo0 hi0 in
      let rec bisect lo hi n =
        if n = 0 then (lo +. hi) /. 2.0
        else
          let mid = (lo +. hi) /. 2.0 in
          if cdf ~df mid < target then bisect mid hi (n - 1) else bisect lo mid (n - 1)
      in
      bisect lo hi 100
    end
end

module F_dist = struct
  let cdf ~df1 ~df2 x =
    if df1 <= 0.0 || df2 <= 0.0 then invalid_arg "F_dist: dfs must be positive";
    if x <= 0.0 then 0.0
    else
      regularized_incomplete_beta ~a:(df1 /. 2.0) ~b:(df2 /. 2.0)
        ~x:(df1 *. x /. ((df1 *. x) +. df2))

  let survival ~df1 ~df2 x = 1.0 -. cdf ~df1 ~df2 x
end

module Chi2 = struct
  let cdf ~df x =
    if x <= 0.0 then 0.0 else regularized_lower_gamma ~a:(df /. 2.0) ~x:(x /. 2.0)
end
