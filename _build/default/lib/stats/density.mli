(** Gaussian kernel density estimation, used to render the paper's Figure 1
    violin plots (the width of the violin at a value is proportional to the
    estimated probability density there). *)

type t

val fit : ?bandwidth:float -> float array -> t
(** [fit xs] builds a KDE over the sample. The default bandwidth is
    Silverman's rule of thumb, [0.9 * min(sd, iqr/1.34) * n^(-1/5)], with a
    small positive floor so constant samples still render. *)

val bandwidth : t -> float

val evaluate : t -> float -> float
(** Density estimate at a point. *)

val curve : t -> ?points:int -> lo:float -> hi:float -> unit -> (float * float) array
(** [curve t ~lo ~hi ()] samples the density on an evenly spaced grid,
    returning [(x, density)] pairs. *)
