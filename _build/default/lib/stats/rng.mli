(** Seeded, splittable pseudo-random number generator.

    All randomness in the reproduction flows through this module so that any
    experiment is reproducible from a single integer seed, mirroring the
    paper's use of a PRNG key to regenerate a given code/data placement. The
    core generator is splitmix64, which is adequate for layout perturbation
    and noise injection (we need reproducibility and decorrelation between
    streams, not cryptographic strength). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s continuation; used to give each benchmark /
    reordering / run its own stream. *)

val named_stream : t -> string -> t
(** [named_stream t name] derives a generator from [t]'s seed and [name]
    without advancing [t]; equal names give equal streams. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float

val exponential : t -> mean:float -> float

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
