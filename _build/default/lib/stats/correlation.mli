(** Pearson correlation and its significance test.

    The paper uses Pearson's r to quantify how much of the CPI variance a
    microarchitectural event explains (r^2, the coefficient of
    determination), and a Student t-test of the null hypothesis "there is no
    correlation" to decide whether a benchmark is suitable for program
    interferometry at p <= 0.05. *)

val pearson_r : float array -> float array -> float
(** Sample correlation coefficient; arrays must have equal length >= 2.
    Returns 0 when either variable is constant. *)

val r_squared : float array -> float array -> float
(** Coefficient of determination of the simple regression of [y] on [x]. *)

type t_test_result = {
  r : float;
  t_statistic : float;
  degrees_of_freedom : int;
  p_value : float;  (** two-sided *)
  significant : bool;  (** at the level passed to [correlation_t_test] *)
}

val correlation_t_test : ?alpha:float -> float array -> float array -> t_test_result
(** [correlation_t_test ~alpha xs ys] tests H0: rho = 0 using
    t = r sqrt((n-2)/(1-r^2)) with n-2 degrees of freedom. [alpha]
    defaults to 0.05 as in the paper. *)
