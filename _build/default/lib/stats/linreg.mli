(** Simple least-squares linear regression with confidence and prediction
    intervals.

    This is the statistical core of program interferometry: for each
    benchmark the paper fits [CPI = slope * MPKI + intercept] over ~100
    code reorderings, then reads predictions off the line — e.g. the
    y-intercept is the estimated CPI under perfect branch prediction — with
    95% confidence intervals (for the line itself) and 95% prediction
    intervals (for future observations). *)

type t = {
  slope : float;
  intercept : float;
  n : int;
  x_mean : float;
  sxx : float;  (** sum of squared x deviations *)
  residual_standard_error : float;  (** s, with n-2 degrees of freedom *)
  r : float;  (** Pearson correlation of the fitted data *)
  r_squared : float;
  slope_standard_error : float;
  intercept_standard_error : float;
}

val fit : float array -> float array -> t
(** [fit xs ys] fits [y = slope * x + intercept]. Requires >= 3 points and a
    non-degenerate x range. *)

val predict : t -> float -> float
(** Point estimate on the regression line. *)

type interval = { lower : float; estimate : float; upper : float }

val confidence_interval : ?level:float -> t -> float -> interval
(** [confidence_interval ~level model x0] bounds the *mean response* at
    [x0]: the band that contains the true regression line with probability
    [level] (default 0.95). *)

val prediction_interval : ?level:float -> t -> float -> interval
(** [prediction_interval ~level model x0] bounds a *future single
    observation* at [x0]; always wider than the confidence interval. *)

val slope_t_test : ?alpha:float -> t -> float * bool
(** p-value and significance of H0: slope = 0 (equivalent to the
    correlation t-test for simple regression). *)

val pp : Format.formatter -> t -> unit
