lib/stats/linreg.mli: Format
