lib/stats/correlation.mli:
