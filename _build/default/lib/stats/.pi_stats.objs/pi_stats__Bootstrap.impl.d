lib/stats/bootstrap.ml: Array Descriptive Linreg Rng
