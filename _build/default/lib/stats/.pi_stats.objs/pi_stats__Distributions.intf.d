lib/stats/distributions.mli:
