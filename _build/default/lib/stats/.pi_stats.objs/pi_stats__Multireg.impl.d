lib/stats/multireg.ml: Array Descriptive Distributions Float Format Matrix
