lib/stats/distributions.ml: Array Float
