lib/stats/matrix.ml: Array Format
