lib/stats/density.ml: Array Descriptive Float
