lib/stats/rng.mli:
