lib/stats/multireg.mli: Format
