lib/stats/density.mli:
