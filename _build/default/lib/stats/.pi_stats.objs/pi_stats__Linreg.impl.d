lib/stats/linreg.ml: Array Descriptive Distributions Float Format
