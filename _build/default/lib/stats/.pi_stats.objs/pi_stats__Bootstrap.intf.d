lib/stats/bootstrap.mli:
