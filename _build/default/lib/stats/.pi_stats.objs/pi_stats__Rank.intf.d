lib/stats/rank.mli: Correlation
