lib/stats/correlation.ml: Array Descriptive Distributions Float
