lib/stats/rank.ml: Array Correlation Descriptive Distributions Float
