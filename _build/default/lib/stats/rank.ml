let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare xs.(i) xs.(j)) order;
  let result = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Find the tie run [i, j). *)
    let j = ref (!i + 1) in
    while !j < n && xs.(order.(!j)) = xs.(order.(!i)) do
      incr j
    done;
    let mean_rank = float_of_int (!i + !j + 1) /. 2.0 in
    for k = !i to !j - 1 do
      result.(order.(k)) <- mean_rank
    done;
    i := !j
  done;
  result

let spearman_rho xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Rank.spearman_rho: length mismatch";
  Correlation.pearson_r (ranks xs) (ranks ys)

let spearman_test ?alpha xs ys = Correlation.correlation_t_test ?alpha (ranks xs) (ranks ys)

type anova = {
  f_statistic : float;
  df_between : int;
  df_within : int;
  p_value : float;
}

let one_way_anova groups =
  let k = Array.length groups in
  if k < 2 then invalid_arg "Rank.one_way_anova: need >= 2 groups";
  Array.iter
    (fun g -> if Array.length g < 2 then invalid_arg "Rank.one_way_anova: group too small")
    groups;
  let n = Array.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let grand_mean =
    Array.fold_left (fun acc g -> acc +. Descriptive.sum g) 0.0 groups /. float_of_int n
  in
  let ss_between =
    Array.fold_left
      (fun acc g ->
        let d = Descriptive.mean g -. grand_mean in
        acc +. (float_of_int (Array.length g) *. d *. d))
      0.0 groups
  in
  let ss_within =
    Array.fold_left
      (fun acc g ->
        let m = Descriptive.mean g in
        acc +. Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 g)
      0.0 groups
  in
  let df_between = k - 1 and df_within = n - k in
  let f =
    if ss_within <= 1e-300 then infinity
    else ss_between /. float_of_int df_between /. (ss_within /. float_of_int df_within)
  in
  let p_value =
    if not (Float.is_finite f) then 0.0
    else
      Distributions.F_dist.survival ~df1:(float_of_int df_between)
        ~df2:(float_of_int df_within) f
  in
  { f_statistic = f; df_between; df_within; p_value }
