type t = {
  slope : float;
  intercept : float;
  n : int;
  x_mean : float;
  sxx : float;
  residual_standard_error : float;
  r : float;
  r_squared : float;
  slope_standard_error : float;
  intercept_standard_error : float;
}

let fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Linreg.fit: length mismatch";
  if n < 3 then invalid_arg "Linreg.fit: need >= 3 points";
  let nf = float_of_int n in
  let x_mean = Descriptive.mean xs and y_mean = Descriptive.mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. x_mean and dy = ys.(i) -. y_mean in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx <= 0.0 then invalid_arg "Linreg.fit: degenerate x (zero variance)";
  let slope = !sxy /. !sxx in
  let intercept = y_mean -. (slope *. x_mean) in
  let ss_residual = Float.max 0.0 (!syy -. (slope *. !sxy)) in
  let s = sqrt (ss_residual /. (nf -. 2.0)) in
  let r = if !syy <= 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy) in
  let slope_se = s /. sqrt !sxx in
  let intercept_se = s *. sqrt ((1.0 /. nf) +. (x_mean *. x_mean /. !sxx)) in
  {
    slope;
    intercept;
    n;
    x_mean;
    sxx = !sxx;
    residual_standard_error = s;
    r;
    r_squared = r *. r;
    slope_standard_error = slope_se;
    intercept_standard_error = intercept_se;
  }

let predict m x = (m.slope *. x) +. m.intercept

type interval = { lower : float; estimate : float; upper : float }

let t_multiplier ~level m =
  if level <= 0.0 || level >= 1.0 then invalid_arg "Linreg: level out of (0,1)";
  let df = float_of_int (m.n - 2) in
  Distributions.Student_t.quantile ~df (1.0 -. ((1.0 -. level) /. 2.0))

let mean_response_se m x0 =
  let nf = float_of_int m.n in
  let dx = x0 -. m.x_mean in
  m.residual_standard_error *. sqrt ((1.0 /. nf) +. (dx *. dx /. m.sxx))

let new_observation_se m x0 =
  let nf = float_of_int m.n in
  let dx = x0 -. m.x_mean in
  m.residual_standard_error *. sqrt (1.0 +. (1.0 /. nf) +. (dx *. dx /. m.sxx))

let interval_of ~half x0 m =
  let estimate = predict m x0 in
  { lower = estimate -. half; estimate; upper = estimate +. half }

let confidence_interval ?(level = 0.95) m x0 =
  let half = t_multiplier ~level m *. mean_response_se m x0 in
  interval_of ~half x0 m

let prediction_interval ?(level = 0.95) m x0 =
  let half = t_multiplier ~level m *. new_observation_se m x0 in
  interval_of ~half x0 m

let slope_t_test ?(alpha = 0.05) m =
  let df = float_of_int (m.n - 2) in
  if m.slope_standard_error <= 0.0 then (0.0, true)
  else
    let t = m.slope /. m.slope_standard_error in
    let p = Distributions.Student_t.two_sided_p ~df t in
    (p, p <= alpha)

let pp ppf m =
  Format.fprintf ppf "y = %.5f x + %.5f  (n=%d, r=%.3f, r2=%.3f, s=%.4g)" m.slope
    m.intercept m.n m.r m.r_squared m.residual_standard_error
