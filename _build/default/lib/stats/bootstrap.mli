(** Bootstrap resampling: distribution-free confidence intervals.

    The paper's intervals assume normal residuals; bootstrap percentile
    intervals need no such assumption and serve as the robustness check the
    ablation suite runs on the Table-1 models (if the two interval families
    disagree wildly, the parametric assumptions are suspect). *)

type interval = { lower : float; estimate : float; upper : float }

val mean_interval :
  ?replicates:int -> ?level:float -> seed:int -> float array -> interval
(** Percentile bootstrap interval for the sample mean. *)

val regression_intervals :
  ?replicates:int -> ?level:float -> seed:int -> float array -> float array ->
  interval * interval
(** Case-resampling bootstrap of a simple linear regression: returns
    (slope interval, intercept interval). Requires >= 3 points. *)
