(** Cache interferometry (the paper's Sections 1.3/6.5 and its stated future
    work): estimate the performance impact of changing the cache hierarchy
    the same way Section 7 estimates branch predictors.

    Heap randomization plus code reordering elicits cache-miss variance; a
    multi-linear model [CPI ~ MPKI + L1D + L2] fitted to those measurements
    converts miss rates into cycles. A *hypothetical* cache geometry's miss
    rates are then obtained by functional simulation of the caches alone
    (the analogue of the Pin branch tool: no pipeline, no noise), and the
    model translates them into a CPI estimate. *)

type memory_model = {
  benchmark : string;
  regression : Pi_stats.Multireg.t;  (** CPI ~ [MPKI; L1D MPKI; L2 MPKI] *)
  mean_mpki : float;
  mean_l1d_mpki : float;
  mean_l2_mpki : float;
  mean_cpi : float;
}

val fit : Experiment.dataset -> memory_model
(** Fit the combined model; use a heap-randomized dataset so the cache
    columns carry real variance. *)

val miss_rates :
  Experiment.prepared ->
  seed:int ->
  l1d:Pi_uarch.Cache.geometry ->
  l2:Pi_uarch.Cache.geometry ->
  float * float
(** Cache-only simulation of the data-reference stream under one placement:
    returns (L1D misses, L2 misses) per kilo-instruction, measured after the
    experiment's warmup window. *)

type evaluation = {
  label : string;
  l1d_mpki : float;  (** mean over the dataset's layouts *)
  l2_mpki : float;
  predicted_cpi : float;
  half_width : float;  (** approximate 95% bound from the residual error *)
}

val evaluate :
  ?candidates:(string * Pi_uarch.Cache.geometry * Pi_uarch.Cache.geometry) list ->
  Experiment.dataset ->
  memory_model ->
  evaluation list
(** Default candidates: the baseline 32KB L1D, a 64KB L1D, a 16KB L1D and a
    double-size L2 — the design sweep a cache architect would ask about. *)

val standard_candidates :
  unit -> (string * Pi_uarch.Cache.geometry * Pi_uarch.Cache.geometry) list

val header : string
val row : evaluation -> string
