module Correlation = Pi_stats.Correlation
module Multireg = Pi_stats.Multireg

type t = {
  benchmark : string;
  r2_mpki : float;
  r2_l1i : float;
  r2_l2 : float;
  combined : Multireg.t;
}

let attribute (dataset : Experiment.dataset) =
  let cpis = Experiment.cpis dataset in
  let mpkis = Experiment.mpkis dataset in
  let l1is = Experiment.l1i_mpkis dataset in
  let l2s = Experiment.l2_mpkis dataset in
  let rows =
    Array.init (Array.length cpis) (fun i -> [| mpkis.(i); l1is.(i); l2s.(i) |])
  in
  {
    benchmark = dataset.Experiment.prepared.Experiment.bench.Pi_workloads.Bench.name;
    r2_mpki = Correlation.r_squared mpkis cpis;
    r2_l1i = Correlation.r_squared l1is cpis;
    r2_l2 = Correlation.r_squared l2s cpis;
    combined = Multireg.fit rows cpis;
  }

let combined_r2 t = t.combined.Multireg.r_squared

let average = function
  | [] -> invalid_arg "Blame.average: empty"
  | first :: _ as all ->
      let n = float_of_int (List.length all) in
      let mean f = List.fold_left (fun acc t -> acc +. f t) 0.0 all /. n in
      {
        benchmark = "Average";
        r2_mpki = mean (fun t -> t.r2_mpki);
        r2_l1i = mean (fun t -> t.r2_l1i);
        r2_l2 = mean (fun t -> t.r2_l2);
        combined =
          { first.combined with Multireg.r_squared = mean combined_r2 };
      }

let header =
  Printf.sprintf "%-16s %10s %10s %10s %12s" "Benchmark" "r2(MPKI)" "r2(L1I)" "r2(L2)"
    "combined R2"

let row t =
  Printf.sprintf "%-16s %10.3f %10.3f %10.3f %12.3f" t.benchmark t.r2_mpki t.r2_l1i t.r2_l2
    (combined_r2 t)
