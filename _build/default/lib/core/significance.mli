(** Hypothesis testing with adaptive sample growth (paper Sections 4.6 and
    6.2-6.4).

    For each benchmark we test the null hypothesis "there is no correlation
    between CPI and MPKI" with Student's t-test at p <= 0.05, sampling
    reorderings in batches (the paper: multiples of 100, up to 300) until
    the null is rejected or the budget is exhausted. The combined
    multi-linear model is judged by the F-test instead, as the t-test only
    applies to single-variable models. *)

type verdict = {
  benchmark : string;
  samples_used : int;
  mpki_test : Pi_stats.Correlation.t_test_result;
  combined_f_p_value : float;
  combined_significant : bool;
  significant : bool;  (** MPKI t-test at p <= 0.05 *)
}

val test : ?alpha:float -> Experiment.dataset -> verdict
(** Judge a dataset as-is. *)

val adaptive :
  ?alpha:float ->
  ?initial:int ->
  ?step:int ->
  ?max_samples:int ->
  ?config:Experiment.config ->
  Pi_workloads.Bench.t ->
  verdict * Experiment.dataset
(** Sample [initial] reorderings (default 100), then grow by [step]
    (default 100) up to [max_samples] (default 300) until significance is
    reached; returns the final verdict and all collected data (nothing is
    discarded, as in the paper). *)

val header : string
val row : verdict -> string
