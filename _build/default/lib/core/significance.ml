module Correlation = Pi_stats.Correlation
module Multireg = Pi_stats.Multireg

type verdict = {
  benchmark : string;
  samples_used : int;
  mpki_test : Correlation.t_test_result;
  combined_f_p_value : float;
  combined_significant : bool;
  significant : bool;
}

let test ?(alpha = 0.05) (dataset : Experiment.dataset) =
  let cpis = Experiment.cpis dataset in
  let mpkis = Experiment.mpkis dataset in
  let mpki_test = Correlation.correlation_t_test ~alpha mpkis cpis in
  let combined =
    try
      let attribution = Blame.attribute dataset in
      Some attribution.Blame.combined
    with Failure _ -> None
  in
  let combined_f_p_value =
    match combined with Some m -> m.Multireg.f_p_value | None -> 1.0
  in
  {
    benchmark = dataset.Experiment.prepared.Experiment.bench.Pi_workloads.Bench.name;
    samples_used = Array.length dataset.Experiment.observations;
    mpki_test;
    combined_f_p_value;
    combined_significant = combined_f_p_value <= alpha;
    significant = mpki_test.Correlation.significant;
  }

let adaptive ?(alpha = 0.05) ?(initial = 100) ?(step = 100) ?(max_samples = 300) ?config bench =
  if initial < 3 then invalid_arg "Significance.adaptive: initial < 3";
  let prepared = Experiment.prepare ?config bench in
  let rec grow dataset =
    let verdict = test ~alpha dataset in
    let n = Array.length dataset.Experiment.observations in
    if verdict.significant || n >= max_samples then (verdict, dataset)
    else grow (Experiment.extend dataset ~n_layouts:(min max_samples (n + step)))
  in
  grow (Experiment.observe prepared ~n_layouts:initial)

let header =
  Printf.sprintf "%-16s %8s %8s %10s %10s %12s %6s" "Benchmark" "samples" "r" "t-stat"
    "p(t)" "p(F,comb)" "sig?"

let row v =
  Printf.sprintf "%-16s %8d %8.3f %10.2f %10.4f %12.4f %6s" v.benchmark v.samples_used
    v.mpki_test.Correlation.r v.mpki_test.Correlation.t_statistic
    v.mpki_test.Correlation.p_value v.combined_f_p_value
    (if v.significant then "yes" else "no")
