(** Estimating hypothetical branch predictors (paper Section 7, Figures 7
    and 8).

    For each candidate predictor, the Pin-style tool measures its MPKI on
    the same 100 reorderings used for the counter measurements (one
    deterministic run each), averaged; the regression model then converts
    MPKI into a CPI prediction interval. The real predictor's row reports
    its *observed* mean CPI with a confidence interval instead, since those
    are measurements rather than predictions. *)

type evaluation = {
  predictor : string;
  mean_mpki : float;  (** averaged over the reorderings (Figure 7) *)
  cpi : Pi_stats.Linreg.interval;  (** Figure 8 point with 95% bounds *)
  observed : bool;  (** true only for the real machine predictor *)
}

val standard_candidates : unit -> (string * (unit -> Pi_uarch.Predictor.t)) list
(** The paper's candidate set: GAs 2/4/8/16KB and L-TAGE. *)

val pin_mpki :
  Experiment.prepared -> n_layouts:int -> (unit -> Pi_uarch.Predictor.t) -> float
(** Mean Pin-measured MPKI (direction mispredictions plus the machine's
    indirect-branch misses, which a direction predictor cannot change) over
    layout seeds [1..n_layouts]. *)

val evaluate :
  ?candidates:(string * (unit -> Pi_uarch.Predictor.t)) list ->
  Experiment.dataset ->
  Model.t ->
  evaluation list
(** Rows: real predictor (observed), each candidate (predicted), and the
    perfect predictor at MPKI = 0. Uses the dataset's layouts. *)

type suite_summary = {
  real_cpi : float;
  real_cpi_half_width : float;
  real_mpki : float;
  rows : (string * float * float * float) list;
      (** predictor, mean MPKI, mean predicted CPI, mean half-width *)
}

val summarize_suite : (string * evaluation list) list -> suite_summary
(** Average the per-benchmark evaluations into the paper's headline
    numbers (Section 7.2: real 1.387 +- 0.012 vs perfect 1.223 +- 0.061,
    L-TAGE 37% fewer mispredictions for 4.8% CPI). *)

val header : string
val row : evaluation -> string
