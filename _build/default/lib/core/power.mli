(** Sample-size analysis (paper Section 6.3, "Number of Samples").

    The paper samples reorderings in multiples of 100 until each benchmark
    rejects the no-correlation null, observing that most benchmarks need
    100, some 200, and a few 300. This module reproduces that table and
    adds the standard power calculation: given an observed correlation r,
    the smallest n at which a two-sided t-test at level alpha reaches the
    requested power (using the Fisher z approximation). *)

val required_samples : ?alpha:float -> ?power:float -> float -> int option
(** Smallest sample size detecting correlation [r]; [None] if |r| is (too
    close to) zero. Defaults: alpha 0.05, power 0.8. *)

val detectable_r : ?alpha:float -> ?power:float -> int -> float
(** The weakest |r| detectable at sample size [n] — the flip side used to
    interpret a non-significant benchmark ("any correlation is below X"). *)

type row = {
  benchmark : string;
  observed_r : float;
  samples_used : int;  (** batches actually needed by adaptive sampling *)
  predicted_requirement : int option;  (** from {!required_samples} at the observed r *)
}

val analyze :
  ?alpha:float ->
  ?batch:int ->
  ?max_samples:int ->
  ?config:Experiment.config ->
  Pi_workloads.Bench.t list ->
  row list
(** Run adaptive sampling per benchmark (batches of [batch], default 100,
    up to [max_samples], default 300) and compare the empirical requirement
    with the power-analysis prediction. *)

val header : string
val row_to_string : row -> string
