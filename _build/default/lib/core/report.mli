(** Markdown study reports.

    Bundles a complete interferometry study of one benchmark — measurement
    summary, significance verdict, the regression model with intervals,
    blame attribution, predictor evaluation — into one self-contained
    Markdown document, the artifact a performance engineer would attach to
    a design-review thread. *)

type t = {
  benchmark : string;
  n_layouts : int;
  markdown : string;
}

val generate :
  ?candidates:(string * (unit -> Pi_uarch.Predictor.t)) list ->
  Experiment.dataset ->
  t
(** Runs significance, model fitting, blame and (when the model is
    significant) predictor evaluation over the dataset. *)

val save : t -> path:string -> unit
