(** The per-benchmark performance model: [CPI = slope * MPKI + intercept].

    This is the paper's Table 1 artifact. The slope is the effective cycle
    cost of one extra misprediction per kilo-instruction; the intercept is
    the estimated CPI under perfect branch prediction; prediction intervals
    at MPKI = 0 bound that estimate with 95% confidence. *)

type t = {
  benchmark : string;
  regression : Pi_stats.Linreg.t;
  n_layouts : int;
  mean_mpki : float;
  mean_cpi : float;
  perfect_prediction : Pi_stats.Linreg.interval;
      (** 95% prediction interval at MPKI = 0 (Table 1 Low/High) *)
}

val fit : Experiment.dataset -> t

val predict_cpi : ?level:float -> t -> mpki:float -> Pi_stats.Linreg.interval
(** Prediction interval for the CPI of a hypothetical predictor achieving
    [mpki] on this benchmark. *)

val confidence_cpi : ?level:float -> t -> mpki:float -> Pi_stats.Linreg.interval
(** Confidence interval for the mean response (used for the real,
    observed predictor in Figure 8). *)

val improvement_percent : t -> from_mpki:float -> to_mpki:float -> float
(** Estimated CPI improvement moving between two MPKI operating points
    (the paper's "halving the MPKI improves CPI by 13%" arithmetic). *)

val mpki_reduction_for_cpi_gain : t -> at_mpki:float -> gain_percent:float -> float option
(** Percent MPKI reduction required for a given CPI improvement at an
    operating point ("a 10% CPI improvement requires a 38% misprediction
    reduction"); [None] if the slope is non-positive. *)

val table1_header : string
val table1_row : t -> string
(** "Benchmark | Slope | y-intercept | Low | High" formatting. *)
