(** CSV persistence for experiment datasets.

    A measurement campaign over hundreds of reorderings is worth keeping:
    export observations to CSV for external analysis (R, gnuplot, a
    spreadsheet) and re-import them to refit models without re-simulating.
    The format is one header line then one row per observation:

    [layout_seed,cpi,mpki,l1i_mpki,l1d_mpki,l2_mpki,cycles,instructions,
     mispredicts,l1i_misses,l1d_misses,l2_misses] *)

val header_line : string

val observation_to_row : Experiment.observation -> string
val observation_of_row : string -> (Experiment.observation, string) result

val save : string -> Experiment.dataset -> unit
(** Write the dataset's observations to a file; raises [Sys_error] on I/O
    failure. *)

val load_observations : string -> (Experiment.observation array, string) result
(** Parse a CSV produced by {!save}. The prepared context (program, trace)
    is not stored; reattach with {!reattach}. *)

val reattach : Experiment.prepared -> Experiment.observation array -> Experiment.dataset
(** Build a dataset from re-loaded observations and a freshly prepared
    benchmark (valid as long as benchmark, scale and seed match the
    original campaign — the formats are reproducible by construction). *)
