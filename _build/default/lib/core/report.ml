module Linreg = Pi_stats.Linreg
module D = Pi_stats.Descriptive

type t = { benchmark : string; n_layouts : int; markdown : string }

let add buffer fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt

let generate ?candidates (dataset : Experiment.dataset) =
  let bench = dataset.Experiment.prepared.Experiment.bench in
  let name = bench.Pi_workloads.Bench.name in
  let n = Array.length dataset.Experiment.observations in
  let buffer = Buffer.create 4096 in
  add buffer "# Program interferometry report: %s" name;
  add buffer "";
  add buffer "%s" bench.Pi_workloads.Bench.description;
  add buffer "";
  add buffer "## Measurements (%d reorderings)" n;
  add buffer "";
  add buffer "| metric | mean | sd | min | max |";
  add buffer "|---|---|---|---|---|";
  let metric label xs =
    let s = D.summarize xs in
    add buffer "| %s | %.4f | %.4f | %.4f | %.4f |" label s.D.mean s.D.stddev s.D.min s.D.max
  in
  metric "CPI" (Experiment.cpis dataset);
  metric "MPKI" (Experiment.mpkis dataset);
  metric "L1I MPKI" (Experiment.l1i_mpkis dataset);
  metric "L1D MPKI" (Experiment.l1d_mpkis dataset);
  metric "L2 MPKI" (Experiment.l2_mpkis dataset);
  add buffer "";
  let verdict = Significance.test dataset in
  add buffer "## Significance";
  add buffer "";
  add buffer
    "t-test of H0 \"no CPI~MPKI correlation\": r = %.3f, t = %.2f, p = %.2g — **%s**."
    verdict.Significance.mpki_test.Pi_stats.Correlation.r
    verdict.Significance.mpki_test.Pi_stats.Correlation.t_statistic
    verdict.Significance.mpki_test.Pi_stats.Correlation.p_value
    (if verdict.Significance.significant then "significant" else "not significant");
  let rho = Pi_stats.Rank.spearman_rho (Experiment.mpkis dataset) (Experiment.cpis dataset) in
  add buffer "Spearman rho (monotonicity check): %.3f." rho;
  add buffer "";
  let attribution = Blame.attribute dataset in
  add buffer "## Blame assignment (r-squared of CPI against each event)";
  add buffer "";
  add buffer "| event | r² |";
  add buffer "|---|---|";
  add buffer "| branch MPKI | %.3f |" attribution.Blame.r2_mpki;
  add buffer "| L1I misses | %.3f |" attribution.Blame.r2_l1i;
  add buffer "| L2 misses | %.3f |" attribution.Blame.r2_l2;
  add buffer "| combined model | %.3f |" (Blame.combined_r2 attribution);
  add buffer "";
  if verdict.Significance.significant then begin
    let model = Model.fit dataset in
    add buffer "## Performance model";
    add buffer "";
    add buffer "`CPI = %.5f * MPKI + %.5f` (r² = %.3f, residual s = %.4g)"
      model.Model.regression.Linreg.slope model.Model.regression.Linreg.intercept
      model.Model.regression.Linreg.r_squared
      model.Model.regression.Linreg.residual_standard_error;
    add buffer "";
    let perfect = model.Model.perfect_prediction in
    add buffer
      "Perfect branch prediction: CPI %.3f, 95%% prediction interval [%.3f, %.3f] (%.1f%% \
       improvement)."
      perfect.Linreg.estimate perfect.Linreg.lower perfect.Linreg.upper
      (Model.improvement_percent model ~from_mpki:model.Model.mean_mpki ~to_mpki:0.0);
    add buffer "";
    add buffer "## Hypothetical predictors";
    add buffer "";
    add buffer "| predictor | MPKI | CPI | 95%% bound |";
    add buffer "|---|---|---|---|";
    List.iter
      (fun (e : Predict.evaluation) ->
        add buffer "| %s | %.3f | %.3f | [%.3f, %.3f] |" e.Predict.predictor
          e.Predict.mean_mpki e.Predict.cpi.Linreg.estimate e.Predict.cpi.Linreg.lower
          e.Predict.cpi.Linreg.upper)
      (Predict.evaluate ?candidates dataset model)
  end
  else begin
    add buffer "## Performance model";
    add buffer "";
    add buffer
      "No significant correlation: program interferometry cannot model this benchmark's \
       branch behaviour (detectable |r| at this sample size: %.2f)."
      (Power.detectable_r n)
  end;
  { benchmark = name; n_layouts = n; markdown = Buffer.contents buffer }

let save t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc t.markdown)
