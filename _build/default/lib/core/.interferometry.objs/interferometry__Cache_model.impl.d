lib/core/cache_model.ml: Array Experiment List Pi_isa Pi_layout Pi_stats Pi_uarch Pi_workloads Printf
