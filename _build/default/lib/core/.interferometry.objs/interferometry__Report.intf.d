lib/core/report.mli: Experiment Pi_uarch
