lib/core/significance.ml: Array Blame Experiment Pi_stats Pi_workloads Printf
