lib/core/dataset_io.mli: Experiment
