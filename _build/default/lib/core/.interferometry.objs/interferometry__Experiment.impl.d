lib/core/experiment.ml: Array Hashtbl Pi_isa Pi_layout Pi_uarch Pi_workloads
