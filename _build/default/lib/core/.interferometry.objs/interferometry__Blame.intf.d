lib/core/blame.mli: Experiment Pi_stats
