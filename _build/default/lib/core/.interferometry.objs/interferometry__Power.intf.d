lib/core/power.mli: Experiment Pi_workloads
