lib/core/blame.ml: Array Experiment List Pi_stats Pi_workloads Printf
