lib/core/experiment.mli: Pi_isa Pi_uarch Pi_workloads
