lib/core/significance.mli: Experiment Pi_stats Pi_workloads
