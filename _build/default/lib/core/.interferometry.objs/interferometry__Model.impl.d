lib/core/model.ml: Array Experiment Pi_stats Pi_workloads Printf
