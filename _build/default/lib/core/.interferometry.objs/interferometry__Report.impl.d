lib/core/report.ml: Array Blame Buffer Experiment Fun List Model Pi_stats Pi_workloads Power Predict Printf Significance
