lib/core/model.mli: Experiment Pi_stats
