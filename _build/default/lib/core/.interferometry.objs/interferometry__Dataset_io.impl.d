lib/core/dataset_io.ml: Array Experiment Fun List Pi_uarch Printf Result String
