lib/core/cache_model.mli: Experiment Pi_stats Pi_uarch
