lib/core/predict.mli: Experiment Model Pi_stats Pi_uarch
