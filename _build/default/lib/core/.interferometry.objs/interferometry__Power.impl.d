lib/core/power.ml: Experiment Float List Pi_stats Pi_workloads Printf Significance
