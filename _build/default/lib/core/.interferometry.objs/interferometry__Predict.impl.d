lib/core/predict.ml: Array Experiment Float List Model Pi_isa Pi_layout Pi_pin Pi_stats Pi_uarch Printf
