module Dist = Pi_stats.Distributions

(* Fisher z-transform power analysis for correlation tests:
   n = ((z_{1-alpha/2} + z_{power}) / atanh(r))^2 + 3. *)
let required_samples ?(alpha = 0.05) ?(power = 0.8) r =
  let r = Float.abs r in
  if r < 1e-6 then None
  else if r >= 1.0 then Some 3
  else begin
    let z_alpha = Dist.Normal.quantile (1.0 -. (alpha /. 2.0)) in
    let z_power = Dist.Normal.quantile power in
    let fisher = 0.5 *. log ((1.0 +. r) /. (1.0 -. r)) in
    let n = (((z_alpha +. z_power) /. fisher) ** 2.0) +. 3.0 in
    Some (max 3 (int_of_float (Float.ceil n)))
  end

let detectable_r ?(alpha = 0.05) ?(power = 0.8) n =
  if n < 4 then 1.0
  else begin
    let z_alpha = Dist.Normal.quantile (1.0 -. (alpha /. 2.0)) in
    let z_power = Dist.Normal.quantile power in
    let fisher = (z_alpha +. z_power) /. sqrt (float_of_int n -. 3.0) in
    (* invert atanh *)
    let e = exp (2.0 *. fisher) in
    (e -. 1.0) /. (e +. 1.0)
  end

type row = {
  benchmark : string;
  observed_r : float;
  samples_used : int;
  predicted_requirement : int option;
}

let analyze ?(alpha = 0.05) ?(batch = 100) ?(max_samples = 300) ?config benches =
  List.map
    (fun bench ->
      let verdict, dataset =
        Significance.adaptive ~alpha ~initial:batch ~step:batch ~max_samples ?config bench
      in
      let observed_r =
        Pi_stats.Correlation.pearson_r (Experiment.mpkis dataset) (Experiment.cpis dataset)
      in
      {
        benchmark = bench.Pi_workloads.Bench.name;
        observed_r;
        samples_used = verdict.Significance.samples_used;
        predicted_requirement = required_samples ~alpha observed_r;
      })
    benches

let header =
  Printf.sprintf "%-16s %10s %14s %18s" "Benchmark" "r" "samples used" "power-law estimate"

let row_to_string r =
  Printf.sprintf "%-16s %10.3f %14d %18s" r.benchmark r.observed_r r.samples_used
    (match r.predicted_requirement with
    | Some n -> string_of_int n
    | None -> "unbounded")
