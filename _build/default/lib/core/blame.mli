(** Assigning blame (Figure 6): how much of the CPI variance across code
    reorderings does each microarchitectural event explain?

    Coefficients of determination (r^2) of CPI against branch MPKI, L1I miss
    rate and L2 miss rate, plus the combined multi-linear model over all
    three. The combined R^2 can fall short of the sum because the events are
    not independent (e.g. a misprediction's wrong path perturbs the
    caches). *)

type t = {
  benchmark : string;
  r2_mpki : float;
  r2_l1i : float;
  r2_l2 : float;
  combined : Pi_stats.Multireg.t;  (** CPI ~ MPKI + L1I + L2 *)
}

val attribute : Experiment.dataset -> t

val combined_r2 : t -> float

val average : t list -> t
(** Event-wise mean of the attributions, labelled "Average" — the summary
    bar of Figure 6 (the paper: 27% of CPI variance from mispredictions on
    average). The [combined] field of the result carries only the averaged
    R^2 (its coefficients are not meaningful). *)

val header : string
val row : t -> string
