module Cache = Pi_uarch.Cache
module Multireg = Pi_stats.Multireg
module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type memory_model = {
  benchmark : string;
  regression : Multireg.t;
  mean_mpki : float;
  mean_l1d_mpki : float;
  mean_l2_mpki : float;
  mean_cpi : float;
}

let fit (dataset : Experiment.dataset) =
  let cpis = Experiment.cpis dataset in
  let mpkis = Experiment.mpkis dataset in
  let l1ds = Experiment.l1d_mpkis dataset in
  let l2s = Experiment.l2_mpkis dataset in
  let rows = Array.init (Array.length cpis) (fun i -> [| mpkis.(i); l1ds.(i); l2s.(i) |]) in
  {
    benchmark = dataset.Experiment.prepared.Experiment.bench.Pi_workloads.Bench.name;
    regression = Multireg.fit rows cpis;
    mean_mpki = Pi_stats.Descriptive.mean mpkis;
    mean_l1d_mpki = Pi_stats.Descriptive.mean l1ds;
    mean_l2_mpki = Pi_stats.Descriptive.mean l2s;
    mean_cpi = Pi_stats.Descriptive.mean cpis;
  }

(* Functional simulation of the data side only: walk the trace, resolve
   addresses through the placement, access hypothetical L1D/L2. *)
let miss_rates (prepared : Experiment.prepared) ~seed ~l1d ~l2 =
  let program = prepared.Experiment.program in
  let trace = prepared.Experiment.trace in
  let placement =
    Pi_layout.Placement.make ~heap_random:prepared.Experiment.config.Experiment.heap_random
      program ~seed
  in
  let data = placement.Pi_layout.Placement.data in
  let l1d_cache = Cache.create l1d in
  let l2_cache = Cache.create l2 in
  let n_blocks = Array.length program.Program.blocks in
  let block_mem_counts =
    Array.init n_blocks (fun i ->
        Array.fold_left
          (fun acc instr -> match instr with Program.Mem _ -> acc + 1 | _ -> acc)
          0 program.Program.blocks.(i).Program.instrs)
  in
  let block_instrs = Array.init n_blocks (fun i -> Program.block_instr_count program i) in
  let seq = trace.Trace.block_seq in
  let events = trace.Trace.mem_events in
  let warmup = prepared.Experiment.warmup_blocks in
  let cursor = ref 0 in
  let l1d_misses = ref 0 and l2_misses = ref 0 and instructions = ref 0 in
  let measuring = ref false in
  Array.iteri
    (fun i b ->
      if i = warmup then measuring := true;
      if !measuring then instructions := !instructions + block_instrs.(b);
      for _ = 1 to block_mem_counts.(b) do
        let addr = Pi_layout.Data_layout.address data events.(!cursor) in
        incr cursor;
        if not (Cache.access l1d_cache addr) then begin
          if !measuring then incr l1d_misses;
          if (not (Cache.access l2_cache addr)) && !measuring then incr l2_misses
        end
        else ()
      done)
    seq;
  let per_kilo v = if !instructions = 0 then 0.0 else 1000.0 *. float_of_int v /. float_of_int !instructions in
  (per_kilo !l1d_misses, per_kilo !l2_misses)

type evaluation = {
  label : string;
  l1d_mpki : float;
  l2_mpki : float;
  predicted_cpi : float;
  half_width : float;
}

let standard_candidates () =
  let l1 size_kb assoc = { Cache.size_bytes = size_kb * 1024; assoc; line_bytes = 64 } in
  let l2_of mb = { Cache.size_bytes = mb * 1024 * 1024; assoc = 8; line_bytes = 64 } in
  [
    ("baseline (32KB/4MB)", l1 32 8, l2_of 4);
    ("L1D 64KB", l1 64 8, l2_of 4);
    ("L1D 16KB", l1 16 8, l2_of 4);
    ("L1D 32KB 2-way", l1 32 2, l2_of 4);
    ("L2 8MB", l1 32 8, l2_of 8);
    ("L2 2MB", l1 32 8, l2_of 2);
  ]

let evaluate ?(candidates = standard_candidates ()) (dataset : Experiment.dataset) model =
  let prepared = dataset.Experiment.prepared in
  let n = Array.length dataset.Experiment.observations in
  let df = float_of_int (model.regression.Multireg.n - model.regression.Multireg.k - 1) in
  let t_mult = Pi_stats.Distributions.Student_t.quantile ~df 0.975 in
  (* Approximate prediction half-width: residual error only (leverage terms
     omitted); documented as an approximation in the interface. *)
  let half_width =
    t_mult *. model.regression.Multireg.residual_standard_error *. sqrt (1.0 +. (1.0 /. float_of_int n))
  in
  List.map
    (fun (label, l1d, l2) ->
      let sum_l1d = ref 0.0 and sum_l2 = ref 0.0 in
      for seed = 1 to n do
        let a, b = miss_rates prepared ~seed ~l1d ~l2 in
        sum_l1d := !sum_l1d +. a;
        sum_l2 := !sum_l2 +. b
      done;
      let l1d_mpki = !sum_l1d /. float_of_int n in
      let l2_mpki = !sum_l2 /. float_of_int n in
      let predicted_cpi =
        Multireg.predict model.regression [| model.mean_mpki; l1d_mpki; l2_mpki |]
      in
      { label; l1d_mpki; l2_mpki; predicted_cpi; half_width })
    candidates

let header =
  Printf.sprintf "%-22s %10s %10s %12s" "Cache configuration" "L1D MPKI" "L2 MPKI" "CPI (+-)"

let row e =
  Printf.sprintf "%-22s %10.3f %10.3f %8.3f +- %.3f" e.label e.l1d_mpki e.l2_mpki
    e.predicted_cpi e.half_width
