lib/uarch/local_two_level.mli: Predictor
