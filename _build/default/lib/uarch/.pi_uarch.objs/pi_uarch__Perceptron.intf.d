lib/uarch/perceptron.mli: Predictor
