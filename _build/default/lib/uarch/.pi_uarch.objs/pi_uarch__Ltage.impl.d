lib/uarch/ltage.ml: Array Bytes Char Float Pi_stats Predictor
