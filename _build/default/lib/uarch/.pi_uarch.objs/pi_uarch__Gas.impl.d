lib/uarch/gas.ml: Hybrid Predictor Printf
