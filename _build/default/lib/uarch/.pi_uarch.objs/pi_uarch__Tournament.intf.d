lib/uarch/tournament.mli: Predictor
