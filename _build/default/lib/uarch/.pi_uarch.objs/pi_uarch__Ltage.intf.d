lib/uarch/ltage.mli: Predictor
