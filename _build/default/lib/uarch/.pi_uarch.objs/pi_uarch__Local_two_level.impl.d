lib/uarch/local_two_level.ml: Array Predictor Printf
