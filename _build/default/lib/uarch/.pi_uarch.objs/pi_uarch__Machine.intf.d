lib/uarch/machine.mli: Indirect Pi_isa Pi_layout Pipeline Predictor Trace_cache
