lib/uarch/gas.mli: Predictor
