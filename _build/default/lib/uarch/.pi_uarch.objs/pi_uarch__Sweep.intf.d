lib/uarch/sweep.mli: Pi_isa Pi_layout Pi_stats Pipeline Predictor
