lib/uarch/sweep.ml: Array Bimodal Float Gas Gshare Hybrid List Ltage Machine Perfect Pi_stats Pipeline Printf
