lib/uarch/perfect.ml: Predictor
