lib/uarch/btb.ml: Array Predictor
