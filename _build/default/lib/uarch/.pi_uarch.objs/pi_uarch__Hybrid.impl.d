lib/uarch/hybrid.ml: Predictor Printf
