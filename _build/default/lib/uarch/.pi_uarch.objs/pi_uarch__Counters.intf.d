lib/uarch/counters.mli: Pipeline
