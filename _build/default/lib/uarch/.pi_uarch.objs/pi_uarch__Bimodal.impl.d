lib/uarch/bimodal.ml: Predictor Printf
