lib/uarch/indirect.mli:
