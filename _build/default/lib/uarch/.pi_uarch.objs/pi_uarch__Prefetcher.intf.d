lib/uarch/prefetcher.mli:
