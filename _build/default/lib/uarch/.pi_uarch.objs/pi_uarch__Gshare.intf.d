lib/uarch/gshare.mli: Predictor
