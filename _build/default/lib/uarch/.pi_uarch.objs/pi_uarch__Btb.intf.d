lib/uarch/btb.mli:
