lib/uarch/hybrid.mli: Predictor
