lib/uarch/pipeline.mli: Cache Indirect Pi_isa Pi_layout Predictor Trace_cache
