lib/uarch/predictor.mli:
