lib/uarch/predictor.ml: Bytes Char
