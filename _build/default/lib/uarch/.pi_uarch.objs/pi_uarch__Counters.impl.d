lib/uarch/counters.ml: Float List Pi_stats Pipeline
