lib/uarch/perceptron.ml: Array Predictor Printf
