lib/uarch/perfect.mli: Predictor
