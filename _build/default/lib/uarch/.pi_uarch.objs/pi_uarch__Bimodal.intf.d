lib/uarch/bimodal.mli: Predictor
