lib/uarch/tournament.ml: Array Predictor
