lib/uarch/pipeline.ml: Array Cache Indirect List Option Pi_isa Pi_layout Predictor Prefetcher Trace_cache
