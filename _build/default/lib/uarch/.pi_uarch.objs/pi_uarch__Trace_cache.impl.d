lib/uarch/trace_cache.ml: Array
