lib/uarch/machine.ml: Cache Hybrid Indirect Perfect Pipeline Trace_cache
