lib/uarch/gshare.ml: Predictor Printf
