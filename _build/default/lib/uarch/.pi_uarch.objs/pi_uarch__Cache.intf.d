lib/uarch/cache.mli:
