lib/uarch/indirect.ml: Array Btb Predictor Printf
