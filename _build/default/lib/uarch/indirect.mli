(** Indirect-branch target prediction.

    Indirect jumps and calls (switch dispatch, virtual calls, interpreter
    loops) are predicted by target, not direction. The baseline is a plain
    {!Btb}: one remembered target per branch. The stronger alternative is an
    ITTAGE-style tagged target predictor whose components are indexed by
    geometrically longer global *target* histories, letting it follow
    repeating dispatch sequences — the structure behind the big indirect
    improvements of the late 2000s.

    Like {!Predictor}, simulators drive a closure record: [on_indirect]
    predicts, updates, and reports whether the prediction matched. *)

type t = {
  name : string;
  on_indirect : pc:int -> target:int -> bool;  (** true = target predicted *)
  reset : unit -> unit;
  storage_bits : int;
}

val btb : ?sets:int -> ?ways:int -> unit -> t
(** Plain branch target buffer (default 512 sets x 4 ways). *)

val ittage : ?n_tables:int -> ?entries_log2:int -> ?max_history:int -> unit -> t
(** ITTAGE-lite: a BTB base plus tagged target tables on geometric target
    histories (defaults: 4 tables of 512 entries, histories up to 32). *)

val oracle : unit -> t
(** Always correct; the 0-miss endpoint. *)
