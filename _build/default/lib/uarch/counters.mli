(** Performance-monitoring-counter measurement protocol.

    The paper measures five statistics (cycles, retired instructions,
    mispredicted branches, L1I misses, L2 misses — we also expose L1D) on a
    machine that can program only two event counters at a time, so each
    executable is run in three counter groups of five runs each, keeping the
    run with the median cycle count per group. Cycles and retired
    instructions are architectural (fixed) counters available in every run.

    Real runs are noisy: OS interference, interrupt skid and counter
    multiplexing perturb measurements. We model a multiplicative Gaussian
    term on cycles, occasional exponential "system activity" spikes (which
    the median-of-5 protocol exists to reject), and small additive jitter on
    event counts. All noise is reproducible from the seed. *)

type noise = {
  cycle_sigma : float;  (** relative sd of per-run cycle noise *)
  spike_probability : float;  (** chance a run is disturbed by the OS *)
  spike_scale : float;  (** mean relative magnitude of a spike *)
  event_sigma : float;  (** relative sd on event counters *)
  os_events_per_run : float;  (** absolute extra events from system activity *)
}

val default_noise : noise
val no_noise : noise

type measurement = {
  cpi : float;
  mpki : float;  (** mispredicted retired branches per kilo-instruction *)
  l1i_mpki : float;
  l1d_mpki : float;
  l2_mpki : float;
  cycles : float;
  instructions : float;
  mispredicts : float;
  l1i_misses : float;
  l1d_misses : float;
  l2_misses : float;
}

val ideal : Pipeline.counts -> measurement
(** Noise-free reading (what a simulator reports). *)

val measure :
  ?noise:noise -> ?runs_per_group:int -> seed:int -> Pipeline.counts -> measurement
(** Full protocol: 3 counter groups x [runs_per_group] (default 5) noisy
    runs, median-by-cycles per group. *)

val measure_single_run : ?noise:noise -> seed:int -> Pipeline.counts -> measurement
(** One noisy run with no median filtering — the ablation showing why the
    paper's protocol matters. *)
