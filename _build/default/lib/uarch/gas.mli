(** GAs two-level adaptive predictor (Yeh & Patt 1991).

    A single global history register selects among [2^history_bits] pattern
    table columns; the remaining index bits come from the branch address
    (gselect-style concatenation). This is the family the paper sweeps from
    2KB to 16KB in its Figure 7/8 hardware-budget study, and one half of the
    reverse-engineered Intel Xeon hybrid. *)

val create : entries_log2:int -> history_bits:int -> Predictor.t
(** [1 <= history_bits < entries_log2 <= 24]; address bits used =
    [entries_log2 - history_bits]. *)

val sized_kb : kb:int -> Predictor.t
(** The paper's named configurations: [kb] in {2,4,8,16} gives a GAs
    predictor with a [kb]KB pattern table and a history length that grows
    with the budget. *)
