let xeon_e5440 =
  {
    Pipeline.name = "xeon-e5440";
    make_predictor = Hybrid.xeon_like;
    make_indirect = (fun () -> Indirect.btb ~sets:512 ~ways:4 ());
    data_prefetcher = false;
    trace_cache = None;
    l1i = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 };
    l1d = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 };
    (* The E5440 package has 12MB of 24-way L2 shared by pairs of cores;
       with both cores active a core's *effective* share is nearer 4MB and
       8 ways, which is what governs conflict behaviour for one benchmark
       copy. That effective slice is what we model. *)
    l2 = { Cache.size_bytes = 4 * 1024 * 1024; assoc = 8; line_bytes = 64 };
    costs = { plain = 0.30; fp = 0.55; mul = 0.80; div = 6.0; mem = 0.40; term = 0.35 };
    penalties =
      {
        mispredict = 17.0;
        btb_miss = 14.0;
        l1i_miss = 10.0;
        l1d_miss = 9.0;
        l2_miss = 165.0;
        store_miss_factor = 0.35;
      };
    overlap = { chase = 1.0; random = 0.65; sequential = 0.10; fixed = 0.35 };
    wrong_path = true;
    perfect_btb = false;
  }

let with_predictor config ~name make_predictor =
  { config with Pipeline.make_predictor; name = config.Pipeline.name ^ "+" ^ name }

let with_perfect_prediction config =
  let config = with_predictor config ~name:"perfect" Perfect.perfect in
  { config with Pipeline.perfect_btb = true }

let without_wrong_path config =
  { config with Pipeline.wrong_path = false; name = config.Pipeline.name ^ "-nowp" }

let run = Pipeline.run

let with_indirect config ~name make_indirect =
  { config with Pipeline.make_indirect; name = config.Pipeline.name ^ "+" ^ name }

let with_data_prefetcher config =
  { config with Pipeline.data_prefetcher = true; name = config.Pipeline.name ^ "+prefetch" }

let with_trace_cache ?(geometry = Trace_cache.default_geometry) config =
  { config with Pipeline.trace_cache = Some geometry; name = config.Pipeline.name ^ "+tc" }

(* A NetBurst-flavoured alternative machine: much deeper pipeline (so a far
   higher misprediction cost), a trace cache instead of a classic L1I path,
   and a smaller effective L2 — the kind of contemporaneous design the
   paper's Section 1.5 warns researchers not to bet on. Interferometry run
   on this machine yields visibly steeper Table-1 slopes. *)
let netburst_like =
  {
    xeon_e5440 with
    Pipeline.name = "netburst-like";
    trace_cache = Some Trace_cache.default_geometry;
    penalties =
      {
        Pipeline.mispredict = 31.0;
        btb_miss = 26.0;
        l1i_miss = 12.0;
        l1d_miss = 11.0;
        l2_miss = 210.0;
        store_miss_factor = 0.35;
      };
    l2 = { Cache.size_bytes = 2 * 1024 * 1024; assoc = 8; line_bytes = 64 };
  }
