module Rng = Pi_stats.Rng

type noise = {
  cycle_sigma : float;
  spike_probability : float;
  spike_scale : float;
  event_sigma : float;
  os_events_per_run : float;
}

let default_noise =
  {
    cycle_sigma = 0.0008;
    spike_probability = 0.08;
    spike_scale = 0.02;
    event_sigma = 0.001;
    os_events_per_run = 900.0;
  }

let no_noise =
  {
    cycle_sigma = 0.0;
    spike_probability = 0.0;
    spike_scale = 0.0;
    event_sigma = 0.0;
    os_events_per_run = 0.0;
  }

type measurement = {
  cpi : float;
  mpki : float;
  l1i_mpki : float;
  l1d_mpki : float;
  l2_mpki : float;
  cycles : float;
  instructions : float;
  mispredicts : float;
  l1i_misses : float;
  l1d_misses : float;
  l2_misses : float;
}

let of_readings ~cycles ~instructions ~mispredicts ~l1i_misses ~l1d_misses ~l2_misses =
  let per_kilo x = if instructions <= 0.0 then 0.0 else 1000.0 *. x /. instructions in
  {
    cpi = (if instructions <= 0.0 then 0.0 else cycles /. instructions);
    mpki = per_kilo mispredicts;
    l1i_mpki = per_kilo l1i_misses;
    l1d_mpki = per_kilo l1d_misses;
    l2_mpki = per_kilo l2_misses;
    cycles;
    instructions;
    mispredicts;
    l1i_misses;
    l1d_misses;
    l2_misses;
  }

let ideal (c : Pipeline.counts) =
  of_readings ~cycles:c.Pipeline.cycles
    ~instructions:(float_of_int c.Pipeline.instructions)
    ~mispredicts:(float_of_int (Pipeline.mispredicts c))
    ~l1i_misses:(float_of_int c.Pipeline.l1i_misses)
    ~l1d_misses:(float_of_int c.Pipeline.l1d_misses)
    ~l2_misses:(float_of_int c.Pipeline.l2_misses)

(* One noisy run: returns (cycles, noisy event readings). Retired
   instructions are exact — the run-length instrumentation guarantees the
   user-mode instruction count. *)
type run_reading = {
  r_cycles : float;
  r_mispredicts : float;
  r_l1i : float;
  r_l1d : float;
  r_l2 : float;
}

let noisy_run noise rng (c : Pipeline.counts) =
  let spike =
    if Rng.bernoulli rng noise.spike_probability then
      Rng.exponential rng ~mean:(noise.spike_scale *. c.Pipeline.cycles)
    else 0.0
  in
  let cycles =
    c.Pipeline.cycles *. (1.0 +. (noise.cycle_sigma *. Rng.gaussian rng)) +. spike
  in
  let event true_count os_share =
    let v = float_of_int true_count in
    let jitter = noise.event_sigma *. v *. Rng.gaussian rng in
    let os = noise.os_events_per_run *. os_share *. (1.0 +. (0.3 *. Rng.gaussian rng)) in
    let spill = if spike > 0.0 then spike /. 400.0 *. os_share else 0.0 in
    Float.max 0.0 (v +. jitter +. os +. spill)
  in
  {
    r_cycles = Float.max 0.0 cycles;
    r_mispredicts = event (Pipeline.mispredicts c) 0.08;
    r_l1i = event c.Pipeline.l1i_misses 0.5;
    r_l1d = event c.Pipeline.l1d_misses 0.8;
    r_l2 = event c.Pipeline.l2_misses 0.25;
  }

let median_by_cycles readings =
  let sorted = List.sort (fun a b -> compare a.r_cycles b.r_cycles) readings in
  List.nth sorted (List.length sorted / 2)

let measure ?(noise = default_noise) ?(runs_per_group = 5) ~seed (c : Pipeline.counts) =
  if runs_per_group < 1 then invalid_arg "Counters.measure: runs_per_group < 1";
  let rng = Rng.create seed in
  let group name =
    let stream = Rng.named_stream rng name in
    median_by_cycles
      (List.init runs_per_group (fun _ -> noisy_run noise stream c))
  in
  (* Group 1: mispredicted branches + retired instructions (+cycles).
     Group 2: L1I misses + L2 misses. Group 3: L1D misses + spare. *)
  let g1 = group "group-branch" in
  let g2 = group "group-l1i-l2" in
  let g3 = group "group-l1d" in
  of_readings ~cycles:g1.r_cycles
    ~instructions:(float_of_int c.Pipeline.instructions)
    ~mispredicts:g1.r_mispredicts ~l1i_misses:g2.r_l1i ~l1d_misses:g3.r_l1d
    ~l2_misses:g2.r_l2

let measure_single_run ?(noise = default_noise) ~seed (c : Pipeline.counts) =
  let rng = Rng.create seed in
  let r = noisy_run noise rng c in
  of_readings ~cycles:r.r_cycles
    ~instructions:(float_of_int c.Pipeline.instructions)
    ~mispredicts:r.r_mispredicts ~l1i_misses:r.r_l1i ~l1d_misses:r.r_l1d
    ~l2_misses:r.r_l2
