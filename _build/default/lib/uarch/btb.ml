type t = {
  sets : int;
  ways : int;
  tags : int array;  (** [set * ways + way]; -1 = invalid; LRU order, way 0 = MRU *)
  targets : int array;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then invalid_arg "Btb.create: sets not a power of two";
  if ways < 1 then invalid_arg "Btb.create: ways < 1";
  { sets; ways; tags = Array.make (sets * ways) (-1); targets = Array.make (sets * ways) 0 }

let lookup_update t ~pc ~target =
  let hashed = Predictor.hash_pc pc in
  let set = hashed land (t.sets - 1) in
  let tag = hashed lsr 1 in
  let base = set * t.ways in
  let found = ref (-1) in
  for way = 0 to t.ways - 1 do
    if !found = -1 && t.tags.(base + way) = tag then found := way
  done;
  let correct = !found >= 0 && t.targets.(base + !found) = target in
  (* Move to MRU position (allocating in the LRU way on miss). *)
  let way = if !found >= 0 then !found else t.ways - 1 in
  let rec shift w =
    if w > 0 then begin
      t.tags.(base + w) <- t.tags.(base + w - 1);
      t.targets.(base + w) <- t.targets.(base + w - 1);
      shift (w - 1)
    end
  in
  shift way;
  t.tags.(base) <- tag;
  t.targets.(base) <- target;
  correct

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.targets 0 (Array.length t.targets) 0

let storage_bits t = t.sets * t.ways * (32 + 32)
