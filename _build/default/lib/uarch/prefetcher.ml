type entry = { mutable last_addr : int; mutable stride : int; mutable confidence : int }

type t = {
  entries : entry array;
  mask : int;
  threshold : int;
  degree : int;
  mutable issued : int;
}

let line_bytes = 64

let create ?(table_entries = 512) ?(confidence_threshold = 2) ?(degree = 2) () =
  if table_entries <= 0 || table_entries land (table_entries - 1) <> 0 then
    invalid_arg "Prefetcher.create: table_entries not a power of two";
  {
    entries =
      Array.init table_entries (fun _ -> { last_addr = -1; stride = 0; confidence = 0 });
    mask = table_entries - 1;
    threshold = confidence_threshold;
    degree;
    issued = 0;
  }

let observe t ~mem_id ~addr =
  let e = t.entries.(mem_id land t.mask) in
  let result =
    if e.last_addr < 0 then None
    else begin
      let stride = addr - e.last_addr in
      if stride = e.stride && stride <> 0 then begin
        e.confidence <- min 7 (e.confidence + 1);
        if e.confidence >= t.threshold then begin
          (* Prefetch [degree] lines starting one stride ahead. *)
          let first = (addr + stride) land lnot (line_bytes - 1) in
          t.issued <- t.issued + 1;
          Some (first, t.degree)
        end
        else None
      end
      else begin
        e.stride <- stride;
        e.confidence <- 0;
        None
      end
    end
  in
  e.last_addr <- addr;
  result

let prefetches_issued t = t.issued

let reset t =
  Array.iter
    (fun e ->
      e.last_addr <- -1;
      e.stride <- 0;
      e.confidence <- 0)
    t.entries;
  t.issued <- 0
