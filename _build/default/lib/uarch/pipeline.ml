module Program = Pi_isa.Program
module Trace = Pi_isa.Trace

type penalties = {
  mispredict : float;
  btb_miss : float;
  l1i_miss : float;
  l1d_miss : float;
  l2_miss : float;
  store_miss_factor : float;
}

type instr_costs = {
  plain : float;
  fp : float;
  mul : float;
  div : float;
  mem : float;
  term : float;
}

type overlap = { chase : float; random : float; sequential : float; fixed : float }

type config = {
  name : string;
  make_predictor : unit -> Predictor.t;
  make_indirect : unit -> Indirect.t;
  data_prefetcher : bool;
  trace_cache : Trace_cache.geometry option;
  l1i : Cache.geometry;
  l1d : Cache.geometry;
  l2 : Cache.geometry;
  costs : instr_costs;
  penalties : penalties;
  overlap : overlap;
  wrong_path : bool;
  perfect_btb : bool;  (* oracle indirect-target prediction *)
}

type counts = {
  cycles : float;
  instructions : int;
  cond_branches : int;
  cond_mispredicts : int;
  indirect_branches : int;
  indirect_mispredicts : int;
  btb_misses : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

(* Static per-block cost of the instruction mix, cycles. *)
let block_base_cost costs (b : Program.block) =
  let acc = ref costs.term in
  Array.iter
    (fun instr ->
      acc :=
        !acc
        +.
        match instr with
        | Program.Plain n -> costs.plain *. float_of_int n
        | Program.Fp n -> costs.fp *. float_of_int n
        | Program.Mul n -> costs.mul *. float_of_int n
        | Program.Div n -> costs.div *. float_of_int n
        | Program.Mem _ -> costs.mem)
    b.instrs;
  !acc

let pattern_overlap overlap = function
  | Program.Chase _ -> overlap.chase
  | Program.Random_uniform -> overlap.random
  | Program.Sequential _ -> overlap.sequential
  | Program.Fixed_offset _ -> overlap.fixed

let run ?(warmup_blocks = 0) config (trace : Trace.t) (placement : Pi_layout.Placement.t) =
  let program = trace.Trace.program in
  let code = placement.Pi_layout.Placement.code in
  let data = placement.Pi_layout.Placement.data in
  let predictor = config.make_predictor () in
  let indirect_predictor = config.make_indirect () in
  let prefetcher = if config.data_prefetcher then Some (Prefetcher.create ()) else None in
  let trace_cache = Option.map Trace_cache.create config.trace_cache in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let l2 = Cache.create config.l2 in
  let n_blocks = Array.length program.Program.blocks in
  let base_cost =
    Array.init n_blocks (fun i -> block_base_cost config.costs program.Program.blocks.(i))
  in
  (* Flattened static memory-op id list per block, so the hot loop walks an
     int array instead of re-matching instructions. *)
  let block_mem_ids =
    Array.init n_blocks (fun i ->
        let ids = ref [] in
        Array.iter
          (function Program.Mem m -> ids := m :: !ids | _ -> ())
          program.Program.blocks.(i).Program.instrs;
        Array.of_list (List.rev !ids))
  in
  let mem_overlap =
    Array.map
      (fun (m : Program.mem_op) -> pattern_overlap config.overlap m.pattern)
      program.Program.mem_ops
  in
  let line = config.l1d.Cache.line_bytes in
  let block_addr = code.Pi_layout.Code_layout.block_addr in
  let block_bytes = code.Pi_layout.Code_layout.block_bytes in
  let branch_pc = code.Pi_layout.Code_layout.branch_pc in
  let ibr_pc = code.Pi_layout.Code_layout.ibr_pc in
  let line_shift =
    let rec log2 k v = if v = 1 then k else log2 (k + 1) (v lsr 1) in
    log2 0 config.l1i.Cache.line_bytes
  in
  let block_instrs =
    Array.init n_blocks (fun i -> Program.block_instr_count program i)
  in
  let cycles = ref 0.0 in
  let cond_mispredicts = ref 0 in
  let indirect_mispredicts = ref 0 in
  let btb_misses = ref 0 in
  let cond_branches = ref 0 in
  let indirect_branches = ref 0 in
  let instructions = ref 0 in
  (* Cache counter snapshots taken at the warmup boundary. *)
  let l1i_base = ref (0, 0) and l1d_base = ref (0, 0) and l2_base = ref (0, 0) in
  let pen = config.penalties in
  (* Fetch the lines of a block through L1I (missing into L2), charging
     penalties; [charge] is false for wrong-path fetches. *)
  let fetch ~charge addr bytes =
    let first = addr lsr line_shift in
    let last = (addr + bytes - 1) lsr line_shift in
    for l = first to last do
      let line_addr = l lsl line_shift in
      if not (Cache.access l1i line_addr) then
        if Cache.access l2 line_addr then begin
          if charge then cycles := !cycles +. pen.l1i_miss
        end
        else if charge then cycles := !cycles +. pen.l2_miss *. 0.7
      (* Instruction misses to memory overlap poorly but the stream is
         prefetch-friendly; 0.7 reflects partial hiding. *)
    done
  in
  let mem_events = trace.Trace.mem_events in
  let n_events = Array.length mem_events in
  let mem_cursor = ref 0 in
  (* Resolve and access one data reference, charging penalties. *)
  let data_access mem_id event =
    let addr = Pi_layout.Data_layout.address data event in
    let is_store = Trace.mem_is_store event in
    if not (Cache.access l1d addr) then begin
      let factor =
        (if is_store then pen.store_miss_factor else 1.0) *. mem_overlap.(mem_id)
      in
      if Cache.access l2 addr then cycles := !cycles +. (pen.l1d_miss *. factor)
      else cycles := !cycles +. (pen.l2_miss *. factor)
    end;
    match prefetcher with
    | Some pf -> (
        match Prefetcher.observe pf ~mem_id ~addr with
        | Some (first, count) ->
            (* Prefetches fill L1D and L2 ahead of demand, off the critical
               path (no cycle charge). *)
            for k = 0 to count - 1 do
              let line_addr = first + (k * 64) in
              Cache.fill l2 line_addr;
              Cache.fill l1d line_addr
            done
        | None -> ())
    | None -> ()
  in
  let wrong_path_runs = ref 0 in
  let last_prefetch_cursor = ref (-1) in
  let wrong_path_effects ~alternate_block =
    if config.wrong_path then begin
      (* The front end runs ahead down the wrong path: the alternate
         target's first line may be installed in L1I, but only if it is
         already L2-resident — a memory-latency fetch never completes
         before the pipeline redirects. The L2 is not disturbed. *)
      let alt_line =
        block_addr.(alternate_block) land lnot (config.l1i.Cache.line_bytes - 1)
      in
      if (not (Cache.probe l1i alt_line)) && Cache.probe l2 alt_line then
        Cache.touch l1i alt_line;
      (* ...and occasionally runs far enough ahead to issue the next load
         speculatively, pulling its line into L2 early (prefetch) or
         displacing useful data (pollution). The redirect usually arrives
         first, so only a fraction of mispredictions get this far — and
         back-to-back mispredictions can only prefetch the same upcoming
         line once, so the benefit SATURATES as mispredictions get denser.
         That saturation is the mechanical source of the mild non-linearity
         the paper observes on benchmarks that combine frequent
         mispredictions with last-level-cache pressure (252.eon,
         178.galgel). *)
      incr wrong_path_runs;
      if
        !wrong_path_runs land 7 = 0
        && !last_prefetch_cursor <> !mem_cursor
        && !mem_cursor < n_events
      then begin
        let next_event = mem_events.(!mem_cursor) in
        let addr = Pi_layout.Data_layout.address data next_event in
        Cache.touch l2 (addr land lnot (line - 1));
        last_prefetch_cursor := !mem_cursor
      end
    end
  in
  let seq = trace.Trace.block_seq in
  let n = Array.length seq in
  let warmup = min warmup_blocks (max 0 (n - 1)) in
  for i = 0 to n - 1 do
    if i = warmup then begin
      (* Structures stay warm; measurement starts here, modelling the
         steady state a multi-minute run reaches. *)
      cycles := 0.0;
      cond_mispredicts := 0;
      indirect_mispredicts := 0;
      btb_misses := 0;
      cond_branches := 0;
      indirect_branches := 0;
      instructions := 0;
      l1i_base := (Cache.accesses l1i, Cache.misses l1i);
      l1d_base := (Cache.accesses l1d, Cache.misses l1d);
      l2_base := (Cache.accesses l2, Cache.misses l2)
    end;
    let b = seq.(i) in
    instructions := !instructions + block_instrs.(b);
    cycles := !cycles +. base_cost.(b);
    let trace_cache_hit =
      match trace_cache with
      | Some tc -> Trace_cache.access tc ~block_id:b
      | None -> false
    in
    if not trace_cache_hit then fetch ~charge:true block_addr.(b) block_bytes.(b);
    let ids = block_mem_ids.(b) in
    for k = 0 to Array.length ids - 1 do
      data_access ids.(k) mem_events.(!mem_cursor + k)
    done;
    mem_cursor := !mem_cursor + Array.length ids;
    if i + 1 < n then begin
      let next = seq.(i + 1) in
      match program.Program.blocks.(b).Program.term with
      | Program.Branch { branch; taken; not_taken } ->
          incr cond_branches;
          let outcome = next = taken in
          let correct = predictor.Predictor.on_branch ~pc:branch_pc.(branch) ~taken:outcome in
          if not correct then begin
            incr cond_mispredicts;
            cycles := !cycles +. pen.mispredict;
            wrong_path_effects ~alternate_block:(if outcome then not_taken else taken)
          end
      | Program.Switch { ibr; targets } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length targets > 0 then wrong_path_effects ~alternate_block:targets.(0)
          end
      | Program.Indirect_call { ibr; callees; return_to = _ } ->
          incr indirect_branches;
          let target_addr = block_addr.(next) in
          let hit =
            config.perfect_btb
            || indirect_predictor.Indirect.on_indirect ~pc:ibr_pc.(ibr) ~target:target_addr
          in
          if not hit then begin
            incr indirect_mispredicts;
            incr btb_misses;
            cycles := !cycles +. pen.btb_miss;
            if Array.length callees > 0 then
              wrong_path_effects
                ~alternate_block:program.Program.procs.(callees.(0)).Program.entry
          end
      | Program.Jump _ | Program.Call _ | Program.Return | Program.Halt -> ()
    end
  done;
  let delta (a0, m0) cache = (Cache.accesses cache - a0, Cache.misses cache - m0) in
  let l1i_acc, l1i_miss = delta !l1i_base l1i in
  let l1d_acc, l1d_miss = delta !l1d_base l1d in
  let l2_acc, l2_miss = delta !l2_base l2 in
  {
    cycles = !cycles;
    instructions = !instructions;
    cond_branches = !cond_branches;
    cond_mispredicts = !cond_mispredicts;
    indirect_branches = !indirect_branches;
    indirect_mispredicts = !indirect_mispredicts;
    btb_misses = !btb_misses;
    l1i_accesses = l1i_acc;
    l1i_misses = l1i_miss;
    l1d_accesses = l1d_acc;
    l1d_misses = l1d_miss;
    l2_accesses = l2_acc;
    l2_misses = l2_miss;
  }

let cpi c =
  if c.instructions = 0 then 0.0 else c.cycles /. float_of_int c.instructions

let mispredicts c = c.cond_mispredicts + c.indirect_mispredicts

let per_kilo_instr count c =
  if c.instructions = 0 then 0.0
  else 1000.0 *. float_of_int count /. float_of_int c.instructions

let mpki c = per_kilo_instr (mispredicts c) c
let l1i_mpki c = per_kilo_instr c.l1i_misses c
let l1d_mpki c = per_kilo_instr c.l1d_misses c
let l2_mpki c = per_kilo_instr c.l2_misses c
