(** Oracles and static predictors, the endpoints of the accuracy spectrum. *)

val perfect : unit -> Predictor.t
(** Always correct: the 0-MPKI point the paper extrapolates to. *)

val always_taken : unit -> Predictor.t
val always_not_taken : unit -> Predictor.t
