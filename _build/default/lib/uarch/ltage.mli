(** L-TAGE branch predictor (Seznec, CBP-2 2007).

    TAGE: a bimodal base predictor plus a set of partially-tagged tables
    indexed by hashes of the branch address and geometrically increasing
    global-history lengths; the longest history with a tag hit provides the
    prediction, with allocation-on-mispredict and usefulness counters
    steering table replacement. The "L" adds a loop predictor that locks
    onto constant-trip-count loop branches and predicts their exits exactly
    — the component that lets L-TAGE capture regular behaviour far beyond
    any practical history register.

    The paper uses L-TAGE as "the most accurate branch predictor in the
    academic literature" whose performance on a real machine interferometry
    can forecast. *)

type config = {
  n_tables : int;  (** tagged tables *)
  table_entries_log2 : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_entries_log2 : int;
  loop_entries_log2 : int;
  use_loop_predictor : bool;
}

val default_config : config
(** 8 tagged tables of 2048 entries, 11-bit tags, histories 4..300
    (geometric), 4K-entry base bimodal, 64-entry loop predictor: ~37KB,
    comparable to the 256-kbit CBP-2 configuration. *)

val create : ?config:config -> unit -> Predictor.t

val tage_only : unit -> Predictor.t
(** The same configuration with the loop predictor disabled, for ablation. *)
