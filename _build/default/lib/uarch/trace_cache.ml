type geometry = { entries_log2 : int; assoc : int }

let default_geometry = { entries_log2 = 11; assoc = 4 }

type t = {
  sets : int;
  assoc : int;
  tags : int array;  (* set * assoc + way, LRU order; -1 invalid *)
  mutable hit_count : int;
  mutable access_count : int;
}

let create g =
  if g.entries_log2 < 2 then invalid_arg "Trace_cache.create: too small";
  if g.assoc < 1 then invalid_arg "Trace_cache.create: assoc < 1";
  let entries = 1 lsl g.entries_log2 in
  let sets = entries / g.assoc in
  if sets * g.assoc <> entries || sets land (sets - 1) <> 0 then
    invalid_arg "Trace_cache.create: geometry must divide into power-of-two sets";
  { sets; assoc = g.assoc; tags = Array.make entries (-1); hit_count = 0; access_count = 0 }

let access t ~block_id =
  t.access_count <- t.access_count + 1;
  let set = block_id land (t.sets - 1) in
  let base = set * t.assoc in
  let found = ref (-1) in
  for way = 0 to t.assoc - 1 do
    if !found = -1 && t.tags.(base + way) = block_id then found := way
  done;
  let hit = !found >= 0 in
  if hit then t.hit_count <- t.hit_count + 1;
  let victim = if hit then !found else t.assoc - 1 in
  (* Move to MRU. *)
  let rec shift w =
    if w > 0 then begin
      t.tags.(base + w) <- t.tags.(base + w - 1);
      shift (w - 1)
    end
  in
  shift victim;
  t.tags.(base) <- block_id;
  hit

let hits t = t.hit_count
let accesses t = t.access_count

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hit_count <- 0;
  t.access_count <- 0
