(** The 145-configuration predictor sweep of the paper's Section 3.

    The paper validates linearity of CPI in MPKI by simulating 145 branch
    predictor configurations of varying accuracy (plus a perfect predictor
    and L-TAGE) in MASE, regressing CPI on MPKI over the imperfect
    configurations, and checking the regression's prediction at MPKI = 0
    against true perfect-prediction CPI, and at L-TAGE's MPKI against true
    L-TAGE CPI. We run the same study on our pipeline model. *)

val configurations : unit -> (string * (unit -> Predictor.t)) list
(** Exactly 145 imperfect configurations: bimodal, gshare, GAs and hybrid
    predictors over a range of table sizes and history lengths, plus the
    static predictors. *)

type point = { config_name : string; mpki : float; cpi : float }

type study = {
  benchmark : string;
  points : point array;  (** the 145 imperfect configurations *)
  perfect_cpi : float;  (** simulated perfect-prediction CPI *)
  ltage_point : point;  (** simulated L-TAGE *)
  regression : Pi_stats.Linreg.t;  (** CPI ~ MPKI over [points] *)
  predicted_perfect_cpi : float;
  perfect_error_percent : float;  (** |predicted - actual| / actual * 100 *)
  predicted_ltage_cpi : float;
  ltage_error_percent : float;
}

val run_study :
  ?base:Pipeline.config ->
  ?warmup_blocks:int ->
  benchmark:string ->
  Pi_isa.Trace.t ->
  Pi_layout.Placement.t ->
  study
(** Simulate every configuration on the given trace/placement (noise-free,
    as a simulator would) and evaluate the linear extrapolations. [base]
    defaults to {!Machine.xeon_e5440}. *)
