(** Gshare predictor (McFarling): a counter table indexed by the XOR of the
    branch address and the global branch-history register. History lets it
    predict patterns and correlations; the XOR also makes it the most
    layout-alias-sensitive of the classic designs. *)

val create : entries_log2:int -> history_bits:int -> Predictor.t
(** [history_bits <= entries_log2 <= 24]. *)
