(** Branch direction predictor interface.

    Simulators drive predictors through a uniform closure record: [on_branch]
    receives the branch's instruction address and its actual outcome,
    performs the prediction and the update, and reports whether the
    prediction was correct. Folding predict+update into one call lets the
    perfect predictor fit the interface and keeps the hot loop to a single
    dispatch.

    Concrete predictors also expose typed creation functions (and, for unit
    tests, their internals) in their own modules: {!Bimodal}, {!Gshare},
    {!Gas}, {!Hybrid}, {!Ltage}, {!Perfect}. *)

type t = {
  name : string;
  on_branch : pc:int -> taken:bool -> bool;  (** true = predicted correctly *)
  reset : unit -> unit;
  storage_bits : int;  (** hardware budget, for reporting *)
}

val storage_kb : t -> float

(** Saturating two-bit counter tables, the building block of most
    predictors. *)
module Counter_table : sig
  type table

  val create : entries:int -> table
  (** All counters initialized to weakly not-taken (1). [entries] must be a
      power of two. *)

  val entries : table -> int
  val predict : table -> int -> bool
  (** Taken iff the counter at the (masked) index is >= 2. *)

  val update : table -> int -> bool -> unit
  (** Saturating increment on taken, decrement on not-taken. *)

  val get : table -> int -> int
  val reset : table -> unit
end

val hash_pc : int -> int
(** Canonical PC pre-hash shared by the table-indexed predictors (drops the
    low bit of the byte address). *)
