(** Branch target buffer: a tagged set-associative cache of branch targets
    used for indirect jumps and calls. A lookup that misses, or hits with a
    stale target, redirects the front end just like a direction
    misprediction. Indexing uses low PC bits, so code placement perturbs
    BTB conflicts exactly as it perturbs the direction predictor. *)

type t

val create : sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val lookup_update : t -> pc:int -> target:int -> bool
(** True iff the BTB held the correct target for [pc]; the entry is
    updated/allocated (LRU) either way. *)

val reset : t -> unit
val storage_bits : t -> int
