type t = {
  name : string;
  on_indirect : pc:int -> target:int -> bool;
  reset : unit -> unit;
  storage_bits : int;
}

let btb ?(sets = 512) ?(ways = 4) () =
  let table = Btb.create ~sets ~ways in
  {
    name = Printf.sprintf "btb-%dx%d" sets ways;
    on_indirect = (fun ~pc ~target -> Btb.lookup_update table ~pc ~target);
    reset = (fun () -> Btb.reset table);
    storage_bits = Btb.storage_bits table;
  }

type ittage_entry = { mutable tag : int; mutable target : int; mutable confidence : int }

let ittage ?(n_tables = 4) ?(entries_log2 = 9) ?(max_history = 32) () =
  if n_tables < 1 then invalid_arg "Indirect.ittage: n_tables < 1";
  let base = Btb.create ~sets:256 ~ways:4 in
  let entries = 1 lsl entries_log2 in
  let tables =
    Array.init n_tables (fun _ ->
        Array.init entries (fun _ -> { tag = -1; target = 0; confidence = 0 }))
  in
  (* Geometric history lengths in *target-history hashes*, shortest first. *)
  let lengths =
    Array.init n_tables (fun i ->
        let ratio = float_of_int max_history /. 2.0 in
        int_of_float (2.0 *. (ratio ** (float_of_int i /. float_of_int (max 1 (n_tables - 1))))))
  in
  (* Path history: a rolling hash of recent indirect targets, with one
     folded variant per table length (short lengths shift out old targets
     faster). *)
  let path = Array.make n_tables 0 in
  let index_of i pc =
    (Predictor.hash_pc pc lxor path.(i) lxor (path.(i) lsr entries_log2)) land (entries - 1)
  in
  let tag_of i pc = (Predictor.hash_pc pc lxor (path.(i) lsl 1)) land 0xFFF in
  let on_indirect ~pc ~target =
    (* Longest matching tagged component wins; fall back to the BTB. *)
    let provider = ref (-1) in
    for i = n_tables - 1 downto 0 do
      if !provider = -1 && tables.(i).(index_of i pc).tag = tag_of i pc then provider := i
    done;
    let predicted_target =
      if !provider >= 0 then Some tables.(!provider).(index_of !provider pc).target else None
    in
    let base_correct = Btb.lookup_update base ~pc ~target in
    let correct =
      match predicted_target with Some t -> t = target | None -> base_correct
    in
    (* Update provider. *)
    (if !provider >= 0 then begin
       let e = tables.(!provider).(index_of !provider pc) in
       if e.target = target then e.confidence <- min 3 (e.confidence + 1)
       else if e.confidence > 0 then e.confidence <- e.confidence - 1
       else e.target <- target
     end);
    (* Allocate in a longer table on a wrong prediction. *)
    if not correct then begin
      let start = !provider + 1 in
      let allocated = ref false in
      let i = ref start in
      while (not !allocated) && !i < n_tables do
        let e = tables.(!i).(index_of !i pc) in
        if e.confidence = 0 then begin
          e.tag <- tag_of !i pc;
          e.target <- target;
          e.confidence <- 1;
          allocated := true
        end
        else e.confidence <- e.confidence - 1;
        incr i
      done
    end;
    (* Advance the path history: fold the new target in, per length. *)
    Array.iteri
      (fun i len ->
        let shift = max 1 (16 / max 1 len) in
        path.(i) <- ((path.(i) lsl shift) lxor (target lsr 4)) land 0xFFFFF)
      lengths;
    correct
  in
  let reset () =
    Btb.reset base;
    Array.iter
      (Array.iter (fun e ->
           e.tag <- -1;
           e.target <- 0;
           e.confidence <- 0))
      tables;
    Array.fill path 0 n_tables 0
  in
  {
    name = Printf.sprintf "ittage-%dx%d" n_tables entries;
    on_indirect;
    reset;
    storage_bits = Btb.storage_bits base + (n_tables * entries * (12 + 32 + 2));
  }

let oracle () =
  {
    name = "oracle-indirect";
    on_indirect = (fun ~pc:_ ~target:_ -> true);
    reset = (fun () -> ());
    storage_bits = 0;
  }
