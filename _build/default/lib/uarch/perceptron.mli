(** Perceptron branch predictor (Jiménez & Lin, HPCA 2001).

    Each branch indexes a table of signed weight vectors; the prediction is
    the sign of the dot product of the weights with the (bipolar) global
    history, and training adjusts weights when the prediction was wrong or
    under-confident. Perceptrons exploit much longer histories than
    two-bit-counter schemes at linear (rather than exponential) storage
    cost — the natural "hypothetical predictor" for the paper's Section 7
    methodology to evaluate, from the same research group. *)

val create :
  ?table_entries_log2:int -> ?history_bits:int -> ?threshold:int -> unit -> Predictor.t
(** Defaults: 256 perceptrons, 32 history bits, the classic
    [1.93 * h + 14] training threshold. *)
