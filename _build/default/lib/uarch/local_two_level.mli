(** PAg/PAs local-history two-level predictor (Yeh & Patt 1991-93).

    A first-level table records each branch's own recent outcomes; that
    per-branch history indexes a shared pattern table of two-bit counters.
    Local history captures self-patterns (loop trip counts, periodic data)
    without interference from other branches — complementary to the global
    schemes, and one half of the Alpha 21264 {!Tournament} predictor. *)

val create :
  ?bht_entries_log2:int -> ?local_history_bits:int -> ?pht_entries_log2:int -> unit ->
  Predictor.t
(** Defaults: 1K-entry branch history table of 10-bit local histories,
    1K-entry pattern table. *)
