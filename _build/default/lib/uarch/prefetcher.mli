(** Stride data prefetcher (reference-prediction-table style).

    Tracks, per static memory instruction, the stride between consecutive
    accesses; after the same stride repeats, it prefetches the next line
    ahead of the demand access. Off in the default machine model (its
    effect is folded into the memory-level-parallelism factors); enable it
    for the prefetching ablation, which shows streaming benchmarks' L2
    demand misses collapsing. *)

type t

val create : ?table_entries:int -> ?confidence_threshold:int -> ?degree:int -> unit -> t
(** [table_entries] static memory ops tracked (default 512, direct-mapped on
    the op id), [confidence_threshold] repeats before issuing (default 2),
    [degree] lines prefetched ahead (default 2). *)

val observe : t -> mem_id:int -> addr:int -> (int * int) option
(** Record a demand access; returns [Some (first, count)] when a prefetch
    of [count] lines starting at line address [first] should be issued. *)

val prefetches_issued : t -> int
val reset : t -> unit
