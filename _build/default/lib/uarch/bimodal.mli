(** Bimodal branch predictor (Smith 1981): a table of two-bit saturating
    counters indexed by branch address. Captures per-branch bias and nothing
    else, so it is the floor most hybrid designs fall back on. *)

val create : entries_log2:int -> Predictor.t
(** [entries_log2] in [\[4, 24\]]; storage is [2^entries_log2 * 2] bits. *)

val size_bytes : entries_log2:int -> int
