(** Alpha 21264-style tournament predictor: a local two-level predictor and
    a global (path-history) predictor arbitrated by a chooser that is itself
    indexed by global history. The reference "big machine" predictor of the
    late 1990s, and a useful mid-point between the Xeon-like hybrid and
    L-TAGE in the candidate zoo. *)

val create :
  ?local_bht_log2:int ->
  ?local_history_bits:int ->
  ?global_entries_log2:int ->
  ?global_history_bits:int ->
  ?chooser_entries_log2:int ->
  unit ->
  Predictor.t
(** Defaults mirror the 21264: 1K x 10-bit local histories into a 1K
    pattern table, 4K-entry global table on 12 history bits, 4K-entry
    chooser indexed by the same global history. *)
