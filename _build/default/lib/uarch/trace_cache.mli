(** Trace cache (Rotenberg/Bennett/Smith 1996, Pentium 4 style).

    Stores decoded basic blocks keyed by their *program identity* rather
    than their memory address, so instruction fetch that hits in the trace
    cache is immune to code placement — the paper's Section 2.2 observation
    that a trace cache would mute layout-induced front-end variance.
    Off in the default machine; used by the trace-cache ablation, which
    shows the L1I interferometry signal collapsing when it is enabled. *)

type geometry = { entries_log2 : int; assoc : int }

val default_geometry : geometry
(** 2K block entries, 4-way: roughly a 12K-uop Pentium-4-class budget. *)

type t

val create : geometry -> t

val access : t -> block_id:int -> bool
(** True when the block's decoded trace is present (no L1I fetch needed);
    installs it otherwise. *)

val hits : t -> int
val accesses : t -> int
val reset : t -> unit
