type geometry = { size_bytes : int; assoc : int; line_bytes : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let geometry_sets g =
  if g.size_bytes <= 0 || g.assoc <= 0 || g.line_bytes <= 0 then
    invalid_arg "Cache.geometry_sets: nonpositive geometry";
  if not (is_pow2 g.line_bytes) then invalid_arg "Cache.geometry_sets: line size not a power of two";
  let sets = g.size_bytes / (g.assoc * g.line_bytes) in
  if sets * g.assoc * g.line_bytes <> g.size_bytes then
    invalid_arg "Cache.geometry_sets: size not divisible by assoc * line";
  if not (is_pow2 sets) then invalid_arg "Cache.geometry_sets: set count not a power of two";
  sets

type t = {
  geometry : geometry;
  sets : int;
  line_shift : int;
  tags : int array;  (** [set * assoc + way], LRU order per set; -1 invalid *)
  mutable accesses : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create g =
  let sets = geometry_sets g in
  {
    geometry = g;
    sets;
    line_shift = log2_exact g.line_bytes;
    tags = Array.make (sets * g.assoc) (-1);
    accesses = 0;
    misses = 0;
  }

let geometry t = t.geometry

let find_way t base tag =
  let ways = t.geometry.assoc in
  let rec go way = if way >= ways then -1 else if t.tags.(base + way) = tag then way else go (way + 1) in
  go 0

let promote t base way tag =
  (* Shift ways [0, way) down one and install [tag] as MRU. *)
  let rec shift w =
    if w > 0 then begin
      t.tags.(base + w) <- t.tags.(base + w - 1);
      shift (w - 1)
    end
  in
  shift way;
  t.tags.(base) <- tag

let access t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let tag = line lsr 0 in
  let base = set * t.geometry.assoc in
  let way = find_way t base tag in
  if way >= 0 then begin
    promote t base way tag;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    promote t base (t.geometry.assoc - 1) tag;
    false
  end

let probe t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.geometry.assoc in
  find_way t base line >= 0

let touch t addr = ignore (access t addr)

let fill t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.geometry.assoc in
  let way = find_way t base line in
  promote t base (if way >= 0 then way else t.geometry.assoc - 1) line

let access_range t ~addr ~bytes =
  if bytes <= 0 then 0
  else begin
    let first = addr lsr t.line_shift in
    let last = (addr + bytes - 1) lsr t.line_shift in
    let misses = ref 0 in
    for line = first to last do
      if not (access t (line lsl t.line_shift)) then incr misses
    done;
    !misses
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
