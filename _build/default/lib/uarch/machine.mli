(** The modelled machine: an Intel Xeon E5440 stand-in.

    Bundles the default pipeline configuration — Xeon-like hybrid branch
    predictor, 32KB 8-way L1I and L1D, a 24-way L2 slice, Core-2-era
    penalties — and helpers to swap the branch predictor while keeping the
    rest of the machine fixed, which is exactly the counterfactual program
    interferometry asks about ("what if Intel changed only the
    predictor?"). *)

val xeon_e5440 : Pipeline.config

val netburst_like : Pipeline.config
(** Deep-pipeline alternative (trace cache, ~31-cycle refill, smaller L2):
    the paper's Section 1.5 point that future-microarchitecture guesses are
    risky. Interferometry on this machine yields steeper mispredict
    costs. *)

val with_predictor : Pipeline.config -> name:string -> (unit -> Predictor.t) -> Pipeline.config
(** Replace the branch predictor (and the config name). *)

val with_perfect_prediction : Pipeline.config -> Pipeline.config

val without_wrong_path : Pipeline.config -> Pipeline.config
(** Ablation: disable wrong-path cache side effects. *)

val with_indirect :
  Pipeline.config -> name:string -> (unit -> Indirect.t) -> Pipeline.config
(** Swap the indirect-target predictor (e.g. {!Indirect.ittage}). *)

val with_data_prefetcher : Pipeline.config -> Pipeline.config
(** Enable the stride prefetcher (ablation). *)

val with_trace_cache : ?geometry:Trace_cache.geometry -> Pipeline.config -> Pipeline.config
(** Enable the placement-immune trace cache (ablation). *)

val run :
  ?warmup_blocks:int -> Pipeline.config -> Pi_isa.Trace.t -> Pi_layout.Placement.t ->
  Pipeline.counts
