(** Hybrid predictor: GAs + bimodal with a chooser (Evers/Chang/Patt-style
    tournament). The paper's reverse-engineering experiments suggest the
    Intel Xeon E5440 uses such a hybrid; this is the model standing in for
    the "real branch predictor" in all hardware measurements. *)

val create :
  ?name:string ->
  gas_entries_log2:int ->
  gas_history_bits:int ->
  bimodal_entries_log2:int ->
  chooser_entries_log2:int ->
  unit ->
  Predictor.t

val xeon_like : unit -> Predictor.t
(** The default "Intel Xeon E5440" stand-in: a mid-2000s-scale hybrid —
    4K-entry global component with 9 history bits (gshare-style indexing),
    2K-entry bimodal, 2K-entry chooser (~2KB total). *)
