(* Command-line front end:

     interferometry list
     interferometry trace   <bench>
     interferometry measure <bench> --layouts 50 [--heap-random] [--seed N]
     interferometry model   <bench> --layouts 50
     interferometry blame   <bench> --layouts 50
     interferometry predict <bench> --layouts 30
     interferometry sweep   <bench> [--axis predictor|cache] [--jobs N] [--check]
     interferometry cache   <bench> --layouts 25     (cache interferometry)
     interferometry report  <bench> -o study.md      (full Markdown report)
     interferometry export  <bench> runs.csv         (CSV persistence)
     interferometry refit   <bench> runs.csv
     interferometry campaign --suite 2006 --jobs 4   (parallel suite campaign)
     interferometry stats                            (metrics scrape pretty-print)

   `measure`, `sweep` and `campaign` also accept --metrics-out FILE and
   --trace-out FILE.json (Prometheus scrape / Chrome trace, see
   docs/OBSERVABILITY.md). Run `dune exec bin/interferometry_cli.exe -- --help`
   for details. *)

open Cmdliner
module E = Interferometry.Experiment
module Linreg = Pi_stats.Linreg
module Metrics = Pi_obs.Metrics

(* --metrics-out / --trace-out: shared observability flags. Tracing is
   enabled up front (spans are off by default and cost one atomic load);
   both artifacts are dumped when the wrapped command body returns,
   including the failure paths that end in a nonzero exit. *)

let metrics_out_term =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a metrics scrape to $(docv) on exit: Prometheus text \
                 exposition format, or its JSON twin when $(docv) ends in \
                 $(b,.json).")

let trace_out_term =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE.json"
           ~doc:"Enable stage tracing and write the spans as Chrome \
                 trace-event JSON (loadable in Perfetto) on exit.")

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_metrics path =
  if Filename.check_suffix path ".json" then begin
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          (Pi_campaign.Telemetry.to_string
             (Pi_campaign.Telemetry.metrics_json (Metrics.scrape ())));
        output_char oc '\n')
  end
  else Metrics.save_prometheus ~path

let with_obs ~metrics_out ~trace_out f =
  if Option.is_some trace_out then Pi_obs.Span.set_enabled true;
  let result = f () in
  Option.iter (fun path -> Pi_obs.Span.save ~path) trace_out;
  Option.iter write_metrics metrics_out;
  result

let bench_arg =
  let parse name =
    match Pi_workloads.Spec.find name with
    | bench -> Ok bench
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown benchmark %S; try `interferometry list`" name))
  in
  let print ppf (b : Pi_workloads.Bench.t) = Format.fprintf ppf "%s" b.name in
  Arg.conv (parse, print)

let bench_pos =
  Arg.(required & pos 0 (some bench_arg) None & info [] ~docv:"BENCHMARK")

let layouts_term =
  Arg.(value & opt int 50 & info [ "layouts"; "n" ] ~docv:"N" ~doc:"Number of code reorderings.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master PRNG seed.")

let scale_term =
  Arg.(value & opt int 8 & info [ "scale" ] ~docv:"K" ~doc:"Workload scale (trip multiplier).")

let heap_random_term =
  Arg.(value & flag & info [ "heap-random" ] ~doc:"Randomize heap placement (DieHard-style).")

let config_of ~seed ~scale ~heap_random =
  { E.default_config with E.master_seed = seed; scale; heap_random }

let list_cmd =
  let run () =
    Printf.printf "%-16s %-14s %-5s %s\n" "name" "suite" "sig?" "description";
    List.iter
      (fun (b : Pi_workloads.Bench.t) ->
        Printf.printf "%-16s %-14s %-5s %s\n" b.name
          (Pi_workloads.Bench.suite_name b.suite)
          (if b.expect_significant then "yes" else "no")
          b.description)
      (Pi_workloads.Spec.simulation_suite ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark stand-ins.") Term.(const run $ const ())

let trace_cmd =
  let run bench seed scale =
    let config = config_of ~seed ~scale ~heap_random:false in
    let prepared = E.prepare ~config bench in
    print_endline (Pi_isa.Program.static_stats prepared.E.program);
    print_endline (Pi_isa.Trace.summary prepared.E.trace);
    Printf.printf "warmup: %d blocks\n" prepared.E.warmup_blocks
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Build a benchmark and show its static program and trace statistics.")
    Term.(const run $ bench_pos $ seed_term $ scale_term)

let measure_cmd =
  let run bench layouts seed scale heap_random metrics_out trace_out =
    with_obs ~metrics_out ~trace_out @@ fun () ->
    let config = config_of ~seed ~scale ~heap_random in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    Printf.printf "%-6s %10s %10s %10s %10s %10s\n" "seed" "CPI" "MPKI" "L1I" "L1D" "L2";
    Array.iter
      (fun (o : E.observation) ->
        let m = o.E.measurement in
        Printf.printf "%-6d %10.4f %10.3f %10.3f %10.3f %10.3f\n" o.E.layout_seed
          m.Pi_uarch.Counters.cpi m.Pi_uarch.Counters.mpki m.Pi_uarch.Counters.l1i_mpki
          m.Pi_uarch.Counters.l1d_mpki m.Pi_uarch.Counters.l2_mpki)
      dataset.E.observations;
    Printf.printf "\nCPI:  %s\n"
      (Format.asprintf "%a" Pi_stats.Descriptive.pp_summary
         (Pi_stats.Descriptive.summarize (E.cpis dataset)));
    Printf.printf "MPKI: %s\n"
      (Format.asprintf "%a" Pi_stats.Descriptive.pp_summary
         (Pi_stats.Descriptive.summarize (E.mpkis dataset)))
  in
  Cmd.v
    (Cmd.info "measure" ~doc:"Measure a benchmark over N reorderings (counter protocol).")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term $ heap_random_term
          $ metrics_out_term $ trace_out_term)

let model_cmd =
  let run bench layouts seed scale heap_random =
    let config = config_of ~seed ~scale ~heap_random in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    let verdict = Interferometry.Significance.test dataset in
    print_endline Interferometry.Significance.header;
    print_endline (Interferometry.Significance.row verdict);
    print_newline ();
    if verdict.Interferometry.Significance.significant then begin
      let model = Interferometry.Model.fit dataset in
      print_endline Interferometry.Model.table1_header;
      print_endline (Interferometry.Model.table1_row model);
      let points = Array.map2 (fun x y -> (x, y)) (E.mpkis dataset) (E.cpis dataset) in
      print_newline ();
      print_endline
        (Pi_plot.Scatter.render ~width:90 ~height:22
           ~title:
             (Format.asprintf "CPI vs MPKI: %a" Linreg.pp
                model.Interferometry.Model.regression)
           ~x_label:"MPKI" ~y_label:"CPI"
           ~line:(Pi_plot.Scatter.regression_line model.Interferometry.Model.regression)
           ~bands:
             [
               Pi_plot.Scatter.confidence_band model.Interferometry.Model.regression;
               Pi_plot.Scatter.prediction_band model.Interferometry.Model.regression;
             ]
           points)
    end
    else
      print_endline
        "no significant CPI~MPKI correlation: interferometry cannot model this benchmark"
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Fit and display the CPI ~ MPKI regression model.")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term $ heap_random_term)

let blame_cmd =
  let run bench layouts seed scale heap_random =
    let config = config_of ~seed ~scale ~heap_random in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    let a = Interferometry.Blame.attribute dataset in
    print_endline Interferometry.Blame.header;
    print_endline (Interferometry.Blame.row a);
    Printf.printf "\ncombined model: %s\n"
      (Format.asprintf "%a" Pi_stats.Multireg.pp a.Interferometry.Blame.combined)
  in
  Cmd.v
    (Cmd.info "blame" ~doc:"Attribute CPI variance to microarchitectural events (r^2).")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term $ heap_random_term)

let predict_cmd =
  let run bench layouts seed scale =
    let config = config_of ~seed ~scale ~heap_random:false in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    let model = Interferometry.Model.fit dataset in
    let rows = Interferometry.Predict.evaluate dataset model in
    print_endline Interferometry.Predict.header;
    List.iter (fun e -> print_endline (Interferometry.Predict.row e)) rows
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Estimate CPI of hypothetical predictors (GAs 2-16KB, L-TAGE, perfect).")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term)

let cache_cmd =
  let run bench layouts seed scale =
    (* Cache interferometry wants long runs and a randomized heap. *)
    let config =
      {
        E.default_config with
        E.master_seed = seed;
        scale = 3 * scale;
        budget_blocks = 700_000;
        heap_random = true;
      }
    in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    let model = Interferometry.Cache_model.fit dataset in
    Printf.printf "memory model: %s\n\n"
      (Format.asprintf "%a" Pi_stats.Multireg.pp model.Interferometry.Cache_model.regression);
    print_endline Interferometry.Cache_model.header;
    List.iter
      (fun e -> print_endline (Interferometry.Cache_model.row e))
      (Interferometry.Cache_model.evaluate dataset model)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Cache interferometry: estimate CPI of hypothetical cache geometries.")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term)

let export_cmd =
  let path_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE.csv") in
  let run bench path layouts seed scale heap_random =
    let config = config_of ~seed ~scale ~heap_random in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    Interferometry.Dataset_io.save path dataset;
    Printf.printf "wrote %d observations to %s\n" (Array.length dataset.E.observations) path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Measure a benchmark and export the observations to CSV.")
    Term.(const run $ bench_pos $ path_pos $ layouts_term $ seed_term $ scale_term $ heap_random_term)

let refit_cmd =
  let path_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE.csv") in
  let run bench path seed scale heap_random =
    let config = config_of ~seed ~scale ~heap_random in
    match Interferometry.Dataset_io.load_observations path with
    | Error e ->
        Printf.eprintf "cannot load %s: %s\n" path e;
        exit 1
    | Ok observations ->
        let prepared = E.prepare ~config bench in
        let dataset = Interferometry.Dataset_io.reattach prepared observations in
        let model = Interferometry.Model.fit dataset in
        print_endline Interferometry.Model.table1_header;
        print_endline (Interferometry.Model.table1_row model)
  in
  Cmd.v
    (Cmd.info "refit" ~doc:"Refit the regression model from a previously exported CSV.")
    Term.(const run $ bench_pos $ path_pos $ seed_term $ scale_term $ heap_random_term)

let phases_cmd =
  let run bench seed scale =
    let config = config_of ~seed ~scale ~heap_random:false in
    let prepared = E.prepare ~config bench in
    let trace = prepared.E.trace in
    let interval_blocks = max 1 (Pi_isa.Trace.blocks_executed trace / 12) in
    let ivs = Pi_isa.Phases.intervals trace ~interval_blocks in
    let sp = Pi_isa.Phases.choose ivs in
    Printf.printf "%d intervals of %d blocks, %d phases found\n\n"
      (Array.length ivs) interval_blocks
      (Array.length sp.Pi_isa.Phases.representatives);
    Printf.printf "phase timeline: %s\n\n"
      (String.concat ""
         (Array.to_list
            (Array.map (fun c -> String.make 1 (Char.chr (Char.code 'A' + (c mod 26))))
               sp.Pi_isa.Phases.assignment)));
    let placement = Pi_layout.Placement.make prepared.E.program ~seed:1 in
    let metric t ~warmup_blocks =
      Pi_uarch.Pipeline.cpi (Pi_uarch.Pipeline.run ~warmup_blocks config.E.machine t placement)
    in
    Printf.printf "%-8s %10s %10s %8s\n" "phase" "weight" "CPI" "interval";
    Array.iteri
      (fun i rep ->
        let iv = ivs.(rep) in
        let warmup = min (3 * interval_blocks) iv.Pi_isa.Phases.start_block in
        let sub =
          Pi_isa.Phases.slice trace
            ~start_block:(iv.Pi_isa.Phases.start_block - warmup)
            ~length:(iv.Pi_isa.Phases.length + warmup)
        in
        Printf.printf "%c        %10.3f %10.4f %8d\n"
          (Char.chr (Char.code 'A' + (i mod 26)))
          sp.Pi_isa.Phases.weights.(i)
          (metric sub ~warmup_blocks:warmup) rep)
      sp.Pi_isa.Phases.representatives;
    let full = metric trace ~warmup_blocks:prepared.E.warmup_blocks in
    let estimate =
      Pi_isa.Phases.estimate metric trace ~interval_blocks
        ~warmup_blocks:(3 * interval_blocks) ()
    in
    Printf.printf "\nfull CPI %.4f, simpoint estimate %.4f (%.2f%% error)\n" full estimate
      (100.0 *. Float.abs (estimate -. full) /. full)
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"SimPoint-style phase analysis of a benchmark's trace.")
    Term.(const run $ bench_pos $ seed_term $ scale_term)

let report_cmd =
  let path_term =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.md"
           ~doc:"Write the Markdown report to a file instead of stdout.")
  in
  let run bench layouts seed scale heap_random path =
    let config = config_of ~seed ~scale ~heap_random in
    let dataset = E.run ~config bench ~n_layouts:layouts in
    let report = Interferometry.Report.generate dataset in
    match path with
    | Some path ->
        Interferometry.Report.save report ~path;
        Printf.printf "wrote %s\n" path
    | None -> print_string report.Interferometry.Report.markdown
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Generate a complete Markdown study report for one benchmark.")
    Term.(const run $ bench_pos $ layouts_term $ seed_term $ scale_term $ heap_random_term $ path_term)

let sweep_cmd =
  let jobs_term =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Shard the fused lanes over $(docv) domains (default 1: one \
                   fused pass on the calling domain). Results are bit-identical \
                   for any value.")
  in
  let check_term =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Also run the sequential per-config study of the selected \
                   axis and fail (exit 1) unless it matches the fused study \
                   bit for bit.")
  in
  let axis_term =
    Arg.(value & opt (enum [ ("predictor", `Predictor); ("cache", `Cache) ]) `Predictor
         & info [ "axis" ] ~docv:"AXIS"
             ~doc:"Sweep axis: $(b,predictor) (145 branch-predictor \
                   configurations, the Section-3 linearity study) or \
                   $(b,cache) (100 L1I/L2 geometry variants, the \
                   INTERPLAY-style degradation study).")
  in
  let history_term =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE.jsonl"
             ~doc:"Append a run-history record (study wall seconds, configs/s, \
                   fit quality) to $(docv) — the ledger $(b,interferometry \
                   history) and $(b,compare) read.")
  in
  let bundle_term =
    Arg.(value & opt (some string) None
         & info [ "bundle" ] ~docv:"DIR"
             ~doc:"Emit a content-addressed run bundle (canonical-JSON manifest, \
                   SHA-256-pinned inputs, the study CSV) under $(docv); check it \
                   with $(b,interferometry bundle verify|diff).")
  in
  let budget_term =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N"
             ~doc:"Surrogate-steer the sweep: replay at most $(docv) grid lanes \
                   (a deterministic space-filling seed plus the lanes the model \
                   is least sure of) and fill the rest from the fitted \
                   surrogate. A budget covering the whole grid is bit-identical \
                   to the unsteered sweep.")
  in
  let max_err_term =
    Arg.(value & opt (some float) None
         & info [ "max-err" ] ~docv:"PCT"
             ~doc:"Surrogate-steer the sweep: keep replaying lanes until the \
                   model's CPI uncertainty is below $(docv) percent everywhere, \
                   then fill the remaining lanes from the surrogate.")
  in
  let run bench seed scale jobs axis check budget max_err history bundle metrics_out trace_out =
    with_obs ~metrics_out ~trace_out @@ fun () ->
    if jobs < 1 then begin
      Printf.eprintf "sweep: --jobs must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    let surrogate =
      match (budget, max_err) with
      | Some _, Some _ ->
          prerr_endline "sweep: --budget and --max-err are mutually exclusive";
          exit 2
      | Some b, None ->
          if b < 1 then begin
            Printf.eprintf "sweep: --budget must be >= 1 (got %d)\n" b;
            exit 2
          end;
          Some (Pi_uarch.Sweep.Budget b)
      | None, Some e ->
          if e <= 0.0 then begin
            Printf.eprintf "sweep: --max-err must be positive (got %g)\n" e;
            exit 2
          end;
          Some (Pi_uarch.Sweep.Max_err e)
      | None, None -> None
    in
    let config = config_of ~seed ~scale ~heap_random:false in
    let prepared = E.prepare ~config bench in
    let placement = Pi_layout.Placement.natural prepared.E.program in
    let map_shards =
      if jobs > 1 then Some (Pi_campaign.Campaign.sweep_shard_map ~jobs ()) else None
    in
    let append_history ~axis_label metrics =
      Option.iter
        (fun path ->
          Pi_obs.History.append ~path
            (Pi_obs.History.make ~kind:"sweep"
               ~label:(bench.Pi_workloads.Bench.name ^ "/" ^ axis_label)
               ~config_digest:(Pi_campaign.Obs_cache.config_digest config) metrics);
          Printf.printf "history: %s\n" path)
        history
    in
    let t0 = Unix.gettimeofday () in
    (* Sweep bundles pin the same inputs a campaign bundle does (config
       knobs + program/trace fingerprints) and one study CSV as output. *)
    let emit_bundle ~axis_label ~metrics ~csv =
      Option.iter
        (fun dir ->
          let module B = Pi_campaign.Bundle in
          let module JT = Pi_campaign.Telemetry in
          let bench_name = bench.Pi_workloads.Bench.name in
          let digest = Pi_campaign.Obs_cache.config_digest config in
          let config_args =
            [
              ("quick", JT.Bool false);
              ("seed", JT.Int seed);
              ("scale", JT.Int config.E.scale);
              ("heap_random", JT.Bool false);
            ]
          in
          let config_json =
            B.canonical_string
              (JT.Obj
                 [
                   ("config_args", JT.Obj config_args);
                   ("config_digest", JT.String digest);
                   ("axis", JT.String axis_label);
                   ("benches", JT.List [ JT.String bench_name ]);
                 ])
            ^ "\n"
          in
          let fingerprint =
            B.canonical_string
              (JT.Obj
                 [
                   ("bench", JT.String bench_name);
                   ("warmup_blocks", JT.Int prepared.E.warmup_blocks);
                   ( "blocks_executed",
                     JT.Int (Pi_isa.Trace.blocks_executed prepared.E.trace) );
                   ( "program_sha256",
                     JT.String
                       (Pi_campaign.Sha256.string
                          (Pi_isa.Program.static_stats prepared.E.program)) );
                   ( "trace_sha256",
                     JT.String
                       (Pi_campaign.Sha256.string (Pi_isa.Trace.summary prepared.E.trace))
                   );
                 ])
            ^ "\n"
          in
          let bm =
            B.write ~dir ~kind:"sweep"
              ~label:(bench_name ^ "/" ^ axis_label)
              ~config_digest:digest ~config_args ~benches:[ bench_name ] ~n_layouts:1
              ~workers:1 ~created_at:t0 ~metrics
              ~inputs:
                [
                  ("config.json", config_json);
                  ( Pi_campaign.Obs_cache.sanitize_bench_name bench_name
                    ^ ".fingerprint.json",
                    fingerprint );
                ]
              ~outputs:[ ("study.csv", csv) ]
              ()
          in
          Printf.printf "bundle: %s (%d pinned artifacts)\n" dir
            (List.length bm.B.artifacts))
        bundle
    in
    match axis with
    | `Predictor ->
        let s =
          Pi_uarch.Sweep.run_study ~warmup_blocks:prepared.E.warmup_blocks ~shards:jobs
            ?map_shards ?surrogate ~benchmark:bench.Pi_workloads.Bench.name prepared.E.trace
            placement
        in
        Printf.printf
          "%d fused lanes + %d per-config, %d shard%s, %d warmup blocks\n"
          s.Pi_uarch.Sweep.fused_lanes s.Pi_uarch.Sweep.fallback_lanes s.Pi_uarch.Sweep.shards
          (if s.Pi_uarch.Sweep.shards = 1 then "" else "s")
          s.Pi_uarch.Sweep.warmup_blocks;
        if Option.is_some surrogate then
          Printf.printf
            "surrogate: %d/%d lanes replayed (%d pruned), %d rounds, holdout CPI err max \
             %.3f%% mean %.3f%%\n"
            s.Pi_uarch.Sweep.replayed_lanes
            (Array.length s.Pi_uarch.Sweep.points)
            (Array.length s.Pi_uarch.Sweep.points - s.Pi_uarch.Sweep.replayed_lanes)
            s.Pi_uarch.Sweep.surrogate_rounds s.Pi_uarch.Sweep.surrogate_max_abs_err
            s.Pi_uarch.Sweep.surrogate_mean_abs_err;
        Printf.printf "regression over 145 imperfect configurations: %s\n"
          (Format.asprintf "%a" Linreg.pp s.Pi_uarch.Sweep.regression);
        Printf.printf "perfect:  actual CPI %.4f, extrapolated %.4f (error %.2f%%)\n"
          s.Pi_uarch.Sweep.perfect_cpi s.Pi_uarch.Sweep.predicted_perfect_cpi
          s.Pi_uarch.Sweep.perfect_error_percent;
        Printf.printf "L-TAGE:   actual CPI %.4f at %.3f MPKI, interpolated %.4f (error %.2f%%)\n"
          s.Pi_uarch.Sweep.ltage_point.Pi_uarch.Sweep.cpi
          s.Pi_uarch.Sweep.ltage_point.Pi_uarch.Sweep.mpki s.Pi_uarch.Sweep.predicted_ltage_cpi
          s.Pi_uarch.Sweep.ltage_error_percent;
        (let elapsed = Unix.gettimeofday () -. t0 in
         let configs = s.Pi_uarch.Sweep.fused_lanes + s.Pi_uarch.Sweep.fallback_lanes in
         let metrics =
           [
             ("wall_seconds", elapsed);
             ( "sweep_configs_per_sec",
               if elapsed > 0.0 then float_of_int configs /. elapsed else 0.0 );
             ("r_squared", s.Pi_uarch.Sweep.regression.Linreg.r_squared);
             ("perfect_error_percent", s.Pi_uarch.Sweep.perfect_error_percent);
             ("ltage_error_percent", s.Pi_uarch.Sweep.ltage_error_percent);
           ]
           @
           if Option.is_some surrogate then
             [
               ("replayed_lanes", float_of_int s.Pi_uarch.Sweep.replayed_lanes);
               ("surrogate_max_abs_err", s.Pi_uarch.Sweep.surrogate_max_abs_err);
               ("surrogate_mean_abs_err", s.Pi_uarch.Sweep.surrogate_mean_abs_err);
             ]
           else []
         in
         append_history ~axis_label:"predictor" metrics;
         let csv =
           let buf = Buffer.create 4096 in
           Buffer.add_string buf "config,mpki,cpi\n";
           Array.iter
             (fun (p : Pi_uarch.Sweep.point) ->
               Buffer.add_string buf
                 (Printf.sprintf "%s,%.17g,%.17g\n" p.Pi_uarch.Sweep.config_name
                    p.Pi_uarch.Sweep.mpki p.Pi_uarch.Sweep.cpi))
             s.Pi_uarch.Sweep.points;
           Buffer.contents buf
         in
         emit_bundle ~axis_label:"predictor" ~metrics ~csv);
        if check then begin
          match surrogate with
          | None ->
              let sequential =
                Pi_uarch.Sweep.run_study ~warmup_blocks:prepared.E.warmup_blocks ~fused:false
                  ~benchmark:bench.Pi_workloads.Bench.name prepared.E.trace placement
              in
              if
                s.Pi_uarch.Sweep.points = sequential.Pi_uarch.Sweep.points
                && s.Pi_uarch.Sweep.perfect_cpi = sequential.Pi_uarch.Sweep.perfect_cpi
                && s.Pi_uarch.Sweep.ltage_point = sequential.Pi_uarch.Sweep.ltage_point
              then print_endline "check: fused study identical to sequential study"
              else begin
                prerr_endline "FAIL: fused study differs from sequential study";
                exit 1
              end
          | Some steering ->
              (* Steered check: every replayed lane must match the full fused
                 study bit for bit, and every predicted lane must be within
                 the tolerance (the --max-err bound; 1% for --budget). *)
              let full =
                Pi_uarch.Sweep.run_study ~warmup_blocks:prepared.E.warmup_blocks ~shards:jobs
                  ?map_shards ~benchmark:bench.Pi_workloads.Bench.name prepared.E.trace
                  placement
              in
              let tol =
                match steering with
                | Pi_uarch.Sweep.Max_err e -> e
                | Pi_uarch.Sweep.Budget _ -> 1.0
              in
              let failures = ref 0 in
              let pred_max = ref 0.0 in
              Array.iteri
                (fun i (p : Pi_uarch.Sweep.point) ->
                  let f = full.Pi_uarch.Sweep.points.(i) in
                  match s.Pi_uarch.Sweep.sources.(i) with
                  | Pi_uarch.Sweep.Replayed ->
                      if p <> f then begin
                        Printf.eprintf "FAIL: replayed lane %s differs from the full study\n"
                          p.Pi_uarch.Sweep.config_name;
                        incr failures
                      end
                  | Pi_uarch.Sweep.Predicted ->
                      let err =
                        Float.abs (p.Pi_uarch.Sweep.cpi -. f.Pi_uarch.Sweep.cpi)
                        /. f.Pi_uarch.Sweep.cpi *. 100.0
                      in
                      pred_max := Float.max !pred_max err;
                      if err > tol then begin
                        Printf.eprintf "FAIL: predicted lane %s CPI off by %.3f%% (> %.3f%%)\n"
                          p.Pi_uarch.Sweep.config_name err tol;
                        incr failures
                      end)
                s.Pi_uarch.Sweep.points;
              if !failures = 0 then
                Printf.printf
                  "check: replayed lanes bit-identical, predicted CPI within %.3f%% (max \
                   %.3f%%)\n"
                  tol !pred_max
              else exit 1
        end
    | `Cache ->
        let s =
          Pi_uarch.Sweep.run_cache_study ~warmup_blocks:prepared.E.warmup_blocks ~shards:jobs
            ?map_shards ?surrogate ~benchmark:bench.Pi_workloads.Bench.name prepared.E.trace
            placement
        in
        Printf.printf
          "%d fused cache lanes, %d shard%s, %d warmup blocks\n"
          s.Pi_uarch.Sweep.cache_fused_lanes s.Pi_uarch.Sweep.cache_shards
          (if s.Pi_uarch.Sweep.cache_shards = 1 then "" else "s")
          s.Pi_uarch.Sweep.cache_warmup_blocks;
        if Option.is_some surrogate then
          Printf.printf
            "surrogate: %d/%d lanes replayed (%d pruned), %d rounds, holdout CPI err max \
             %.3f%% mean %.3f%%\n"
            s.Pi_uarch.Sweep.cache_replayed_lanes
            (Array.length s.Pi_uarch.Sweep.cache_points)
            (Array.length s.Pi_uarch.Sweep.cache_points
            - s.Pi_uarch.Sweep.cache_replayed_lanes)
            s.Pi_uarch.Sweep.cache_surrogate_rounds
            s.Pi_uarch.Sweep.cache_surrogate_max_abs_err
            s.Pi_uarch.Sweep.cache_surrogate_mean_abs_err;
        Printf.printf "degradation model over 99 degraded geometries: %s\n"
          (Format.asprintf "%a" Pi_stats.Multireg.pp s.Pi_uarch.Sweep.degradation);
        let seed_pt = s.Pi_uarch.Sweep.seed_point in
        Printf.printf
          "seed %s: actual CPI %.4f at %.3f L1I / %.3f L2 MPKI, predicted %.4f (error %.2f%%)\n"
          seed_pt.Pi_uarch.Sweep.geometry_name seed_pt.Pi_uarch.Sweep.cache_cpi
          seed_pt.Pi_uarch.Sweep.l1i_mpki seed_pt.Pi_uarch.Sweep.l2_mpki
          s.Pi_uarch.Sweep.predicted_seed_cpi s.Pi_uarch.Sweep.seed_error_percent;
        (let elapsed = Unix.gettimeofday () -. t0 in
         let metrics =
           [
             ("wall_seconds", elapsed);
             ( "sweep_configs_per_sec",
               if elapsed > 0.0 then
                 float_of_int s.Pi_uarch.Sweep.cache_fused_lanes /. elapsed
               else 0.0 );
             ("r_squared", s.Pi_uarch.Sweep.degradation.Pi_stats.Multireg.r_squared);
             ("seed_error_percent", s.Pi_uarch.Sweep.seed_error_percent);
           ]
           @
           if Option.is_some surrogate then
             [
               ("replayed_lanes", float_of_int s.Pi_uarch.Sweep.cache_replayed_lanes);
               ("surrogate_max_abs_err", s.Pi_uarch.Sweep.cache_surrogate_max_abs_err);
               ("surrogate_mean_abs_err", s.Pi_uarch.Sweep.cache_surrogate_mean_abs_err);
             ]
           else []
         in
         append_history ~axis_label:"cache" metrics;
         let csv =
           let buf = Buffer.create 4096 in
           Buffer.add_string buf "geometry,l1i_mpki,l2_mpki,cpi\n";
           Array.iter
             (fun (p : Pi_uarch.Sweep.cache_point) ->
               Buffer.add_string buf
                 (Printf.sprintf "%s,%.17g,%.17g,%.17g\n" p.Pi_uarch.Sweep.geometry_name
                    p.Pi_uarch.Sweep.l1i_mpki p.Pi_uarch.Sweep.l2_mpki
                    p.Pi_uarch.Sweep.cache_cpi))
             s.Pi_uarch.Sweep.cache_points;
           Buffer.contents buf
         in
         emit_bundle ~axis_label:"cache" ~metrics ~csv);
        if check then begin
          match surrogate with
          | None ->
              let sequential =
                Pi_uarch.Sweep.run_cache_study ~warmup_blocks:prepared.E.warmup_blocks
                  ~fused:false ~benchmark:bench.Pi_workloads.Bench.name prepared.E.trace
                  placement
              in
              if
                s.Pi_uarch.Sweep.cache_points = sequential.Pi_uarch.Sweep.cache_points
                && s.Pi_uarch.Sweep.seed_point = sequential.Pi_uarch.Sweep.seed_point
                && s.Pi_uarch.Sweep.predicted_seed_cpi
                   = sequential.Pi_uarch.Sweep.predicted_seed_cpi
              then print_endline "check: fused study identical to sequential study"
              else begin
                prerr_endline "FAIL: fused study differs from sequential study";
                exit 1
              end
          | Some steering ->
              let full =
                Pi_uarch.Sweep.run_cache_study ~warmup_blocks:prepared.E.warmup_blocks
                  ~shards:jobs ?map_shards ~benchmark:bench.Pi_workloads.Bench.name
                  prepared.E.trace placement
              in
              let tol =
                match steering with
                | Pi_uarch.Sweep.Max_err e -> e
                | Pi_uarch.Sweep.Budget _ -> 1.0
              in
              let failures = ref 0 in
              let pred_max = ref 0.0 in
              Array.iteri
                (fun i (p : Pi_uarch.Sweep.cache_point) ->
                  let f = full.Pi_uarch.Sweep.cache_points.(i) in
                  match s.Pi_uarch.Sweep.cache_sources.(i) with
                  | Pi_uarch.Sweep.Replayed ->
                      if p <> f then begin
                        Printf.eprintf "FAIL: replayed lane %s differs from the full study\n"
                          p.Pi_uarch.Sweep.geometry_name;
                        incr failures
                      end
                  | Pi_uarch.Sweep.Predicted ->
                      let err =
                        Float.abs (p.Pi_uarch.Sweep.cache_cpi -. f.Pi_uarch.Sweep.cache_cpi)
                        /. f.Pi_uarch.Sweep.cache_cpi *. 100.0
                      in
                      pred_max := Float.max !pred_max err;
                      if err > tol then begin
                        Printf.eprintf "FAIL: predicted lane %s CPI off by %.3f%% (> %.3f%%)\n"
                          p.Pi_uarch.Sweep.geometry_name err tol;
                        incr failures
                      end)
                s.Pi_uarch.Sweep.cache_points;
              if !failures = 0 then
                Printf.printf
                  "check: replayed lanes bit-identical, predicted CPI within %.3f%% (max \
                   %.3f%%)\n"
                  tol !pred_max
              else exit 1
        end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Fused configuration sweeps: the Section-3 predictor linearity study \
             (--axis predictor) or the cache-geometry degradation study (--axis cache).")
    Term.(const run $ bench_pos $ seed_term $ scale_term $ jobs_term $ axis_term $ check_term
          $ budget_term $ max_err_term $ history_term $ bundle_term $ metrics_out_term
          $ trace_out_term)

let campaign_cmd =
  let suite_term =
    Arg.(value & opt string "2006"
         & info [ "suite" ] ~docv:"SUITE"
             ~doc:"Benchmark population: $(b,2006) (the 23 SPEC CPU 2006 stand-ins), \
                   $(b,2000), or $(b,all) (the full registry).")
  in
  let benches_term =
    Arg.(value & opt_all bench_arg []
         & info [ "bench" ] ~docv:"BENCHMARK"
             ~doc:"Measure specific benchmark(s) instead of a suite; repeatable.")
  in
  let jobs_term =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains (default: the recommended domain count).")
  in
  let cache_dir_term =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Observation cache directory; completed (benchmark, config, seed) \
                   jobs found there are not recomputed.")
  in
  let events_term =
    Arg.(value & opt (some string) None
         & info [ "events" ] ~docv:"FILE.jsonl"
             ~doc:"Write JSONL progress events (job started/finished/cached, wall \
                   time, queue depth) to this file.")
  in
  let manifest_term =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"FILE.json"
             ~doc:"Write the run manifest here (default: \
                   $(b,manifest.json) under --cache-dir when one is given).")
  in
  let deadline_term =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Cooperative per-job wall-time limit; jobs that overrun it are \
                   marked failed in the manifest.")
  in
  let quick_term =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Use the quick test configuration (small traces).")
  in
  let campaign_scale_term =
    Arg.(value & opt (some int) None
         & info [ "scale" ] ~docv:"K" ~doc:"Workload scale (trip multiplier).")
  in
  let retries_term =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed job up to $(docv) times (exponential backoff with \
                   deterministic jitter) before marking it failed in the manifest.")
  in
  let backoff_term =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"SECONDS"
             ~doc:"Base of the exponential retry backoff: the k-th retry of a job \
                   sleeps about $(docv) * 2^k seconds first.")
  in
  let fault_term =
    Arg.(value & opt (some string) None
         & info [ "fault-inject" ] ~docv:"SPEC"
             ~doc:"Deterministic fault injection for resilience testing, e.g. \
                   $(b,rate=0.3,kind=exn,seed=7). Kinds: $(b,exn), $(b,delay), \
                   $(b,corrupt-cache) ('+'-separable); $(b,delay=SECS) fixes the \
                   sleep. Also read from $(b,PI_FAULT) when the flag is absent.")
  in
  let history_term =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE.jsonl"
             ~doc:"Append a run-history record (wall/cpu seconds, obs/sec, \
                   cache hit ratio, per-bench R-squared) to $(docv); defaults \
                   to $(b,history.jsonl) under --cache-dir when one is given. \
                   $(b,-) disables. Read it back with $(b,interferometry \
                   history) and gate regressions with $(b,interferometry \
                   compare).")
  in
  let workers_term =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Shard observation jobs across $(docv) spawned worker \
                   processes (work-stealing over pipes; dead workers are \
                   respawned and their jobs re-dispatched). Results are \
                   bit-identical for any worker count. Default: in-process \
                   domains only.")
  in
  let bundle_term =
    Arg.(value & opt (some string) None
         & info [ "bundle" ] ~docv:"DIR"
             ~doc:"Emit a content-addressed run bundle under $(docv): a \
                   canonical-JSON manifest plus SHA-256-pinned inputs and \
                   output CSVs. Check it later with $(b,interferometry bundle \
                   verify|replay|diff).")
  in
  let resume_term =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"MANIFEST.json"
             ~doc:"Resume a prior campaign from its manifest (final or checkpoint): \
                   benchmarks, layout count and config are reloaded from it, the \
                   observation cache is probed, and only missing or failed \
                   (benchmark, seed) jobs are recomputed. Suite/bench/layout flags \
                   are ignored.")
  in
  let run suite benches jobs layouts seed scale heap_random quick cache_dir events_path
      manifest_path deadline retries backoff fault_spec history resume workers bundle
      metrics_out trace_out =
    if layouts < 1 then begin
      Printf.eprintf "campaign: --layouts must be >= 1 (got %d)\n" layouts;
      exit 2
    end;
    (match jobs with
    | Some j when j < 1 ->
        Printf.eprintf "campaign: --jobs must be >= 1 (got %d)\n" j;
        exit 2
    | _ -> ());
    (match workers with
    | Some w when w < 1 ->
        Printf.eprintf "campaign: --workers must be >= 1 (got %d)\n" w;
        exit 2
    | _ -> ());
    if retries < 0 then begin
      Printf.eprintf "campaign: --retries must be >= 0 (got %d)\n" retries;
      exit 2
    end;
    if not (backoff >= 0.0) then begin
      Printf.eprintf "campaign: --backoff must be >= 0 (got %g)\n" backoff;
      exit 2
    end;
    let fault =
      let env =
        match Sys.getenv_opt "PI_FAULT" with
        | Some s when String.trim s <> "" -> Some s (* PI_FAULT= disables *)
        | _ -> None
      in
      match (fault_spec, env) with
      | None, None -> None
      | Some spec, _ | None, Some spec -> (
          match Pi_campaign.Fault.parse spec with
          | Ok f -> Some f
          | Error msg ->
              Printf.eprintf "campaign: bad fault spec %S: %s\n" spec msg;
              exit 2)
    in
    (* One code path executes both fresh and resumed campaigns: the
       manifest destination doubles as the checkpoint anchor, written
       before the first observation job so an interrupt is resumable. *)
    let execute ~config ~config_args ~label ~n_layouts ~cache_dir ~manifest_path benches =
      (* Dump metrics/trace before deciding the exit status: a campaign
         that fails some jobs must still leave its artifacts behind. *)
      let ok =
        with_obs ~metrics_out ~trace_out @@ fun () ->
        let events =
          match events_path with
          | Some path -> Pi_campaign.Telemetry.to_file path
          | None -> Pi_campaign.Telemetry.null
        in
        (* --workers >= 2 moves observation jobs onto a pool of worker
           processes; one scheduler domain per worker keeps the pool
           saturated without oversubscribing it. --workers 1 is the
           in-process baseline that every other worker count must match
           bit for bit. *)
        let n_workers = match workers with Some w when w >= 2 -> w | _ -> 0 in
        let coordinator =
          if n_workers >= 2 then
            Some (Pi_campaign.Coordinator.create ~workers:n_workers ~config_args ())
          else None
        in
        let observe = Option.map Pi_campaign.Coordinator.observe_hook coordinator in
        let jobs =
          match (jobs, coordinator) with
          | Some j, _ -> Some j
          | None, Some _ -> Some n_workers
          | None, None -> None
        in
        let result =
          Fun.protect
            ~finally:(fun () ->
              Option.iter Pi_campaign.Coordinator.shutdown coordinator;
              Pi_campaign.Telemetry.close events)
            (fun () ->
              Pi_campaign.Campaign.run ~config ?jobs ?cache_dir ~events ?deadline
                ~retries ~backoff ?fault ?checkpoint_path:manifest_path ~config_args
                ?label ?observe ~n_layouts benches)
        in
        Option.iter
          (fun dir ->
            let bm =
              Pi_campaign.Bundle.of_campaign ~dir
                ~workers:(if n_workers >= 2 then n_workers else 1)
                result
            in
            Printf.printf "bundle: %s (%d pinned artifacts)\n" dir
              (List.length bm.Pi_campaign.Bundle.artifacts))
          bundle;
        print_string (Pi_campaign.Manifest.summary_table result.Pi_campaign.Campaign.manifest);
        Option.iter
          (fun path ->
            Pi_campaign.Manifest.save result.Pi_campaign.Campaign.manifest ~path;
            Printf.printf "manifest: %s\n" path)
          manifest_path;
        (* The run-history ledger is appended even when jobs failed: the
           sentinel should see failed_jobs grow, not a gap. *)
        (let history_path =
           match history with
           | Some "-" -> None
           | Some path -> Some path
           | None -> Option.map (fun dir -> Filename.concat dir "history.jsonl") cache_dir
         in
         Option.iter
           (fun path ->
             let m = result.Pi_campaign.Campaign.manifest in
             Pi_obs.History.append ~path
               (Pi_obs.History.make ~kind:"campaign" ~label:m.Pi_campaign.Manifest.label
                  ~config_digest:m.Pi_campaign.Manifest.config_digest
                  (Pi_campaign.Manifest.history_metrics m));
             Printf.printf "history: %s\n" path)
           history_path);
        Option.iter (fun path -> Printf.printf "events: %s\n" path) events_path;
        Pi_campaign.Campaign.succeeded result
      in
      if not ok then begin
        Printf.eprintf "campaign finished with failed jobs (see manifest)\n";
        exit 3
      end
    in
    match resume with
    | Some resume_path -> (
        match Pi_campaign.Manifest.load ~path:resume_path with
        | Error msg ->
            Printf.eprintf "campaign: cannot resume: %s\n" msg;
            exit 2
        | Ok m ->
            let benches =
              List.map
                (fun (b : Pi_campaign.Manifest.bench_entry) ->
                  match Pi_workloads.Spec.find b.Pi_campaign.Manifest.bench with
                  | bench -> bench
                  | exception Not_found ->
                      Printf.eprintf "campaign: manifest names unknown benchmark %S\n"
                        b.Pi_campaign.Manifest.bench;
                      exit 2)
                m.Pi_campaign.Manifest.benches
            in
            let args = m.Pi_campaign.Manifest.config_args in
            (* The same decoder the campaign workers and bundle replay
               use: one copy, so "same config_args" means "same digest"
               everywhere. *)
            let config = Pi_campaign.Coordinator.config_of_args args in
            let digest = Pi_campaign.Obs_cache.config_digest config in
            if digest <> m.Pi_campaign.Manifest.config_digest then begin
              Printf.eprintf
                "campaign: config digest mismatch (manifest %s, rebuilt %s): the \
                 manifest's config_args do not reproduce its config on this build\n"
                m.Pi_campaign.Manifest.config_digest digest;
              exit 2
            end;
            let cache_dir =
              match (cache_dir, m.Pi_campaign.Manifest.cache_dir) with
              | Some dir, _ -> Some dir
              | None, Some dir -> Some dir
              | None, None ->
                  Printf.eprintf
                    "campaign: manifest records no cache directory — no observations \
                     were persisted, nothing to resume\n";
                  exit 2
            in
            let manifest_path =
              Some (match manifest_path with Some p -> p | None -> resume_path)
            in
            execute ~config ~config_args:args ~label:(Some m.Pi_campaign.Manifest.label)
              ~n_layouts:m.Pi_campaign.Manifest.n_layouts ~cache_dir ~manifest_path
              benches)
    | None -> (
        let benches =
          match benches with
          | _ :: _ -> Ok benches
          | [] -> (
              match suite with
              | "2006" -> Ok (Pi_workloads.Spec.all_2006 ())
              | "2000" ->
                  Ok
                    (List.filter
                       (fun (b : Pi_workloads.Bench.t) ->
                         b.suite = Pi_workloads.Bench.Cpu2000)
                       (Pi_workloads.Spec.everything ()))
              | "all" -> Ok (Pi_workloads.Spec.everything ())
              | other ->
                  Error (Printf.sprintf "unknown suite %S (try 2006, 2000 or all)" other))
        in
        match benches with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2
        | Ok benches ->
            let module J = Pi_campaign.Telemetry in
            let base = if quick then E.quick_config else E.default_config in
            let config =
              {
                base with
                E.master_seed = seed;
                scale = Option.value scale ~default:base.E.scale;
                heap_random;
              }
            in
            (* Everything --resume needs to rebuild this config, recorded
               verbatim in the manifest. *)
            let config_args =
              [
                ("quick", J.Bool quick);
                ("seed", J.Int seed);
                ("scale", J.Int config.E.scale);
                ("heap_random", J.Bool heap_random);
              ]
            in
            let manifest_path =
              match (manifest_path, cache_dir) with
              | Some path, _ -> Some path
              | None, Some dir -> Some (Filename.concat dir "manifest.json")
              | None, None -> None
            in
            execute ~config ~config_args ~label:None ~n_layouts:layouts ~cache_dir
              ~manifest_path benches)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a parallel interferometry campaign over a benchmark suite."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Measures every benchmark of the selected suite over N reorderings using \
              a pool of worker domains. Completed observations are cached on disk \
              (--cache-dir) keyed by (benchmark, config, seed) as they finish, so \
              re-runs, layout-count growth and interrupted campaigns only simulate \
              missing seeds. Progress is emitted as JSONL events (--events) and the \
              manifest (a checkpoint written up front, finalized at the end) records \
              per-benchmark fits, failures and retry counts. Campaign results are \
              bit-identical for any --jobs value, cache state, or interrupt/resume \
              history. Failed jobs are retried with exponential backoff (--retries, \
              --backoff); --fault-inject exercises these paths deterministically. \
              Exit status is 3 when some jobs failed.";
         ])
    Term.(const run $ suite_term $ benches_term $ jobs_term $ layouts_term $ seed_term
          $ campaign_scale_term $ heap_random_term $ quick_term $ cache_dir_term
          $ events_term $ manifest_term $ deadline_term $ retries_term $ backoff_term
          $ fault_term $ history_term $ resume_term $ workers_term $ bundle_term
          $ metrics_out_term $ trace_out_term)

let stats_cmd =
  let ident (s : Metrics.sample) =
    match s.Metrics.labels with
    | [] -> s.Metrics.name
    | labels ->
        Printf.sprintf "%s{%s}" s.Metrics.name
          (String.concat ","
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
  in
  let print_samples samples =
    List.iter
      (fun (s : Metrics.sample) ->
        match s.Metrics.value with
        | Metrics.Counter n -> Printf.printf "%-48s %d\n" (ident s) n
        | Metrics.Gauge v -> Printf.printf "%-48s %g\n" (ident s) v
        | Metrics.Histogram h ->
            let q p = Metrics.quantile h p in
            Printf.printf "%-48s count %d  sum %.4fs  p50 %.4fs  p90 %.4fs  p99 %.4fs\n"
              (ident s) h.Metrics.count h.Metrics.sum (q 0.5) (q 0.9) (q 0.99))
      samples
  in
  (* Rebuild Metrics.sample values from a live daemon's /metrics.json scrape
     (the inverse of Telemetry.metrics_json) so local and remote scrapes go
     through the same pretty-printer — quantile estimates included. *)
  let samples_of_json doc =
    let module J = Pi_campaign.Telemetry in
    let exception Bad of string in
    let num name = function
      | J.Float f -> f
      | J.Int i -> float_of_int i
      | _ -> raise (Bad (name ^ ": expected a number"))
    in
    let sample_of = function
      | J.Obj fields ->
          let field name =
            match List.assoc_opt name fields with
            | Some v -> v
            | None -> raise (Bad ("sample without " ^ name))
          in
          let str name =
            match field name with
            | J.String s -> s
            | _ -> raise (Bad (name ^ ": expected a string"))
          in
          let int name =
            match field name with
            | J.Int i -> i
            | _ -> raise (Bad (name ^ ": expected an integer"))
          in
          let labels =
            match List.assoc_opt "labels" fields with
            | Some (J.Obj l) ->
                List.map
                  (fun (k, v) ->
                    match v with
                    | J.String s -> (k, s)
                    | _ -> raise (Bad "label value: expected a string"))
                  l
            | _ -> []
          in
          let help =
            match List.assoc_opt "help" fields with Some (J.String h) -> h | _ -> ""
          in
          let value =
            match str "type" with
            | "counter" -> Metrics.Counter (int "value")
            | "gauge" -> Metrics.Gauge (num "value" (field "value"))
            | "histogram" ->
                let buckets =
                  match field "buckets" with
                  | J.List bs ->
                      List.map
                        (function
                          | J.Obj b ->
                              ( num "le" (Option.value ~default:J.Null (List.assoc_opt "le" b)),
                                match List.assoc_opt "count" b with
                                | Some (J.Int n) -> n
                                | _ -> raise (Bad "bucket count: expected an integer") )
                          | _ -> raise (Bad "bucket: expected an object"))
                        bs
                  | _ -> raise (Bad "buckets: expected a list")
                in
                let overflow =
                  match List.assoc_opt "overflow" fields with Some (J.Int n) -> n | _ -> 0
                in
                Metrics.Histogram
                  {
                    Metrics.bounds = Array.of_list (List.map fst buckets);
                    bucket_counts = Array.of_list (List.map snd buckets @ [ overflow ]);
                    count = int "count";
                    sum = num "sum" (field "sum");
                  }
            | other -> raise (Bad ("unknown metric type " ^ other))
          in
          { Metrics.name = str "name"; help; labels; value }
      | _ -> raise (Bad "sample: expected an object")
    in
    match doc with
    | J.Obj fields -> (
        match List.assoc_opt "metrics" fields with
        | Some (J.List items) -> (
            match List.map sample_of items with
            | samples -> Ok samples
            | exception Bad msg -> Error ("malformed /metrics.json: " ^ msg))
        | _ -> Error "malformed /metrics.json: no \"metrics\" list")
    | _ -> Error "malformed /metrics.json: not an object"
  in
  let run bench layouts seed scale url state_dir =
    match (url, state_dir) with
    | None, None ->
        Pi_obs.Span.set_enabled true;
        let config = { E.quick_config with E.master_seed = seed; scale } in
        let _ = E.run ~config bench ~n_layouts:layouts in
        Printf.printf "metrics after a quick %s run (%d layouts, scale %d):\n\n"
          bench.Pi_workloads.Bench.name layouts scale;
        print_samples (Metrics.scrape ());
        Printf.printf "\n%d spans recorded (rerun with --trace-out to keep them)\n"
          (List.length (Pi_obs.Span.events ()))
    | url, state_dir -> (
        let conn =
          match url with
          | Some u -> (
              let bad () =
                Printf.eprintf "stats: bad --url %S (want HOST:PORT or PORT)\n" u;
                exit 2
              in
              match String.rindex_opt u ':' with
              | Some i -> (
                  let host = String.sub u 0 i in
                  let host = if host = "" then "127.0.0.1" else host in
                  match
                    int_of_string_opt (String.sub u (i + 1) (String.length u - i - 1))
                  with
                  | Some port -> { Pi_serve.Client.host; port }
                  | None -> bad ())
              | None -> (
                  match int_of_string_opt u with
                  | Some port -> { Pi_serve.Client.host = "127.0.0.1"; port }
                  | None -> bad ()))
          | None -> (
              match
                Pi_serve.Client.resolve ~state_dir:(Option.get state_dir) ()
              with
              | Ok conn -> conn
              | Error msg ->
                  Printf.eprintf "stats: %s\n" msg;
                  exit 2)
        in
        match Pi_serve.Client.metrics conn with
        | Error msg ->
            Printf.eprintf "stats: %s\n" msg;
            exit 2
        | Ok doc -> (
            match samples_of_json doc with
            | Error msg ->
                Printf.eprintf "stats: %s\n" msg;
                exit 2
            | Ok samples ->
                Printf.printf "live metrics from %s:%d:\n\n" conn.Pi_serve.Client.host
                  conn.Pi_serve.Client.port;
                print_samples samples))
  in
  let bench_term =
    Arg.(
      value
      & opt bench_arg (Pi_workloads.Spec.find "400.perlbench")
      & info [ "bench" ] ~docv:"BENCHMARK" ~doc:"Benchmark to exercise.")
  in
  let stats_layouts_term =
    Arg.(value & opt int 8 & info [ "layouts"; "n" ] ~docv:"N"
           ~doc:"Layouts measured before the scrape.")
  in
  let stats_scale_term =
    Arg.(value & opt int 2 & info [ "scale" ] ~docv:"K" ~doc:"Workload scale.")
  in
  let url_term =
    Arg.(value & opt (some string) None
         & info [ "url" ] ~docv:"HOST:PORT"
             ~doc:"Scrape a running daemon's $(b,/metrics.json) instead of \
                   running anything locally.")
  in
  let stats_state_dir_term =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Discover the daemon through $(b,serve.json) in $(docv) \
                   (alternative to --url).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Pretty-print a metrics scrape — a local exercise run, or a live daemon's."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "By default runs one small quick-config measurement so every \
              layer's instruments have data, then prints each registered \
              metric: counters and gauges by value, histograms with count, sum \
              and estimated p50/p90/p99 quantiles. With $(b,--url) (or \
              $(b,--state-dir) for serve.json discovery) it scrapes a running \
              daemon's /metrics.json instead and prints the same view of the \
              live registry. See docs/OBSERVABILITY.md for the metric \
              catalogue.";
         ])
    Term.(const run $ bench_term $ stats_layouts_term $ seed_term $ stats_scale_term
          $ url_term $ stats_state_dir_term)

let perf_cmd =
  let run bench scale sweep_scale layouts out sweep_out history =
    let r = Interferometry.Perf_bench.run ~bench:bench.Pi_workloads.Bench.name ~scale ~layouts () in
    print_endline (Interferometry.Perf_bench.summary r);
    Option.iter
      (fun path ->
        Interferometry.Perf_bench.write_json ~path r;
        Printf.printf "wrote %s\n" path)
      out;
    let s =
      Interferometry.Perf_bench.run_sweep ~bench:bench.Pi_workloads.Bench.name
        ~scale:sweep_scale ()
    in
    print_endline (Interferometry.Perf_bench.sweep_summary s);
    Option.iter
      (fun path ->
        Interferometry.Perf_bench.write_sweep_json ~path s;
        Printf.printf "wrote %s\n" path)
      sweep_out;
    Option.iter
      (fun path ->
        let digest label a_scale =
          Digest.to_hex
            (Digest.string
               (Printf.sprintf "%s:%s:%d" label bench.Pi_workloads.Bench.name a_scale))
        in
        Pi_obs.History.append ~path
          (Pi_obs.History.make ~kind:"perf" ~label:"pipeline"
             ~config_digest:(digest "pipeline" scale)
             (Interferometry.Perf_bench.history_metrics r));
        Pi_obs.History.append ~path
          (Pi_obs.History.make ~kind:"perf" ~label:"sweep"
             ~config_digest:(digest "sweep" sweep_scale)
             (Interferometry.Perf_bench.sweep_history_metrics s));
        Printf.printf "history: %s\n" path)
      history;
    if not r.Interferometry.Perf_bench.identical then begin
      prerr_endline "FAIL: replay counts differ from the legacy pipeline";
      exit 1
    end;
    if r.Interferometry.Perf_bench.speedup < 1.0 then begin
      Printf.eprintf "FAIL: replay slower than legacy (%.2fx)\n"
        r.Interferometry.Perf_bench.speedup;
      exit 1
    end;
    if not s.Interferometry.Perf_bench.sweep_identical then begin
      prerr_endline "FAIL: fused sweep diverges from the sequential study";
      exit 1
    end
  in
  let bench_term =
    Arg.(
      value
      & opt bench_arg (Pi_workloads.Spec.find "400.perlbench")
      & info [ "bench" ] ~docv:"BENCHMARK" ~doc:"Benchmark to time.")
  in
  let perf_scale_term =
    Arg.(value & opt int 4 & info [ "scale" ] ~docv:"K" ~doc:"Workload scale.")
  in
  let sweep_scale_term =
    Arg.(value & opt int 2
         & info [ "sweep-scale" ] ~docv:"K"
             ~doc:"Workload scale of the fused-sweep benchmark (independent of \
                   $(b,--scale)).")
  in
  let perf_layouts_term =
    Arg.(value & opt int 12 & info [ "layouts"; "n" ] ~docv:"N"
           ~doc:"Placements timed per path.")
  in
  let out_term =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write BENCH_pipeline.json here.")
  in
  let sweep_out_term =
    Arg.(value & opt (some string) None
         & info [ "sweep-out" ] ~docv:"FILE" ~doc:"Write BENCH_sweep.json here.")
  in
  let perf_history_term =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE.jsonl"
             ~doc:"Append both results to this run-history ledger (the full \
                   four-benchmark sweep is $(b,make perf), which appends via \
                   $(b,PI_HISTORY_OUT)).")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Time the legacy pipeline against the compiled replay plan, and the \
             fused predictor sweep against the per-config loop."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Compiles a replay plan for one benchmark trace, then times the same \
              placements through Pipeline.run_unoptimized and Replay.run, and the \
              145-configuration predictor grid through the sequential per-config \
              loop and the fused one-pass engine (Replay.run_many). Fails (exit 1) \
              if either pair of paths disagrees on any counter or if replay is \
              slower than legacy. See docs/PERF.md.";
         ])
    Term.(const run $ bench_term $ perf_scale_term $ sweep_scale_term $ perf_layouts_term
          $ out_term $ sweep_out_term $ perf_history_term)

(* ---- the run-history ledger and the perf-regression sentinel ------ *)

module History = Pi_obs.History

let read_ledger ~warn path =
  let replay = History.read ~path in
  if warn && replay.History.invalid_lines > 0 then
    Printf.eprintf "%s: skipped %d corrupt line(s)\n" path replay.History.invalid_lines;
  if warn && replay.History.torn_tail then
    Printf.eprintf "%s: torn final record (interrupted append) ignored\n" path;
  replay

let history_cmd =
  let run ledger kind label last metric =
    let replay = read_ledger ~warn:true ledger in
    (* Indexes are positions in the full ledger, so a filtered listing still
       shows the @N a `compare LEDGER@N` operand needs. *)
    let rows =
      List.filteri
        (fun _ _ -> true)
        (List.mapi (fun i r -> (i, r)) replay.History.records)
      |> List.filter (fun (_, (r : History.record)) ->
             (match kind with None -> true | Some k -> r.History.kind = k)
             && match label with None -> true | Some l -> r.History.label = l)
    in
    let rows =
      let n = List.length rows in
      if last > 0 && n > last then List.filteri (fun i _ -> i >= n - last) rows
      else rows
    in
    if rows = [] then print_endline "no matching history records"
    else
      List.iter
        (fun (i, (r : History.record)) ->
          let tm = Unix.gmtime r.History.ts in
          let shown =
            match metric with
            | Some m -> (
                match List.assoc_opt m r.History.metrics with
                | Some v -> Printf.sprintf "%s=%s" m (Metrics.float_repr v)
                | None -> m ^ "=absent")
            | None ->
                let parts =
                  List.map
                    (fun (k, v) -> Printf.sprintf "%s=%s" k (Metrics.float_repr v))
                    r.History.metrics
                in
                let shown = List.filteri (fun i _ -> i < 4) parts in
                let extra = List.length parts - List.length shown in
                String.concat " " shown
                ^ (if extra > 0 then Printf.sprintf " (+%d more)" extra else "")
          in
          let digest = r.History.config_digest in
          let digest7 = String.sub digest 0 (min 7 (String.length digest)) in
          Printf.printf "@%-3d %04d-%02d-%02dT%02d:%02d:%02dZ %-8s %-22s %-7s %s\n" i
            (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec r.History.kind
            r.History.label digest7 shown)
        rows
  in
  let ledger_term =
    Arg.(value & opt string "history.jsonl"
         & info [ "ledger" ] ~docv:"FILE.jsonl"
             ~doc:"Run-history ledger to read (campaign runs default to \
                   $(b,history.jsonl) under their cache directory).")
  in
  let kind_term =
    Arg.(value & opt (some string) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only records of this kind ($(b,campaign), $(b,sweep), $(b,perf)).")
  in
  let label_term =
    Arg.(value & opt (some string) None
         & info [ "label" ] ~docv:"LABEL" ~doc:"Only records with this label.")
  in
  let last_term =
    Arg.(value & opt int 0
         & info [ "last" ] ~docv:"N" ~doc:"Only the most recent $(docv) matches.")
  in
  let metric_term =
    Arg.(value & opt (some string) None
         & info [ "metric" ] ~docv:"NAME"
             ~doc:"Show only this metric's value per record.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"List the run-history ledger campaign/sweep/perf runs append to."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each line is one digest-framed record: index (the $(b,@N) \
              operand $(b,interferometry compare) accepts), UTC timestamp, \
              kind, label, config digest prefix and the leading metrics. \
              Corrupt lines are skipped with a warning — history records are \
              independent observations, unlike the serve WAL. See \
              docs/PERF.md.";
         ])
    Term.(const run $ ledger_term $ kind_term $ label_term $ last_term $ metric_term)

let compare_cmd =
  (* One comparison side: HISTORY.jsonl[@N] (Nth record, default the last,
     negative from the end) or any flat-JSON benchmark artifact
     (BENCH_*.json, manifest.json) whose numeric fields become the metric
     bag. *)
  let load_side operand =
    let path, sel =
      match String.rindex_opt operand '@' with
      | Some i -> (
          let p = String.sub operand 0 i in
          let s = String.sub operand (i + 1) (String.length operand - i - 1) in
          match int_of_string_opt s with
          | Some n when p <> "" -> (p, Some n)
          | _ -> (operand, None))
      | None -> (operand, None)
    in
    if Filename.check_suffix path ".jsonl" then begin
      if not (Sys.file_exists path) then Error (path ^ ": no such ledger")
      else
        let replay = read_ledger ~warn:true path in
        let records = Array.of_list replay.History.records in
        let n = Array.length records in
        if n = 0 then Error (path ^ ": no valid history records")
        else
          let idx =
            match sel with None -> n - 1 | Some i when i < 0 -> n + i | Some i -> i
          in
          if idx < 0 || idx >= n then
            Error (Printf.sprintf "%s: record %d out of range (0..%d)" path idx (n - 1))
          else
            let r = records.(idx) in
            Ok
              ( Printf.sprintf "%s@%d (%s %s)" path idx r.History.kind r.History.label,
                r.History.metrics )
    end
    else if sel <> None then
      Error (Printf.sprintf "%s: @N selection only applies to .jsonl ledgers" operand)
    else
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | contents -> (
          let module J = Pi_campaign.Telemetry in
          match J.parse contents with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok doc ->
              (* Flatten nested objects with dotted keys; inside lists only
                 objects self-named by a "bench" field (manifest entries)
                 are descended into. *)
              let rec flatten prefix j acc =
                let key k = if prefix = "" then k else prefix ^ "." ^ k in
                match j with
                | J.Int i -> (prefix, float_of_int i) :: acc
                | J.Float f -> (prefix, f) :: acc
                | J.Obj fields ->
                    List.fold_left
                      (fun acc (k, v) -> flatten (key k) v acc)
                      acc fields
                | J.List items ->
                    List.fold_left
                      (fun acc item ->
                        match item with
                        | J.Obj fields -> (
                            match List.assoc_opt "bench" fields with
                            | Some (J.String name) -> flatten (key name) item acc
                            | _ -> acc)
                        | _ -> acc)
                      acc items
                | J.String _ | J.Bool _ | J.Null -> acc
              in
              let metrics = List.rev (flatten "" doc []) in
              if metrics = [] then Error (path ^ ": no numeric fields to compare")
              else Ok (path, metrics))
  in
  let run before after tolerance =
    match (load_side before, load_side after) with
    | Error msg, _ | _, Error msg ->
        Printf.eprintf "compare: %s\n" msg;
        exit 2
    | Ok (before_label, before), Ok (after_label, after) ->
        let rules =
          match tolerance with
          | None -> History.default_rules
          | Some tol ->
              (* Override the throughput tolerances only; failed_jobs stays
                 a hard zero-tolerance gate. *)
              List.map
                (fun (r : History.rule) ->
                  match r.History.direction with
                  | History.Higher_better -> { r with History.tol_percent = tol }
                  | History.Lower_better -> r)
                History.default_rules
        in
        let deltas = History.compare_metrics ~rules ~before ~after () in
        if deltas = [] then begin
          Printf.eprintf "compare: %s and %s share no metrics\n" before_label
            after_label;
          exit 2
        end;
        Printf.printf "compare %s -> %s\n" before_label after_label;
        List.iter
          (fun (d : History.delta) ->
            let gate =
              match d.History.rule with
              | Some r ->
                  Printf.sprintf "  [%s, tol %g%%]"
                    (match r.History.direction with
                    | History.Higher_better -> "higher is better"
                    | History.Lower_better -> "lower is better")
                    r.History.tol_percent
              | None -> ""
            in
            Printf.printf "%-10s %-28s %14s -> %14s  %+8.2f%%%s\n"
              (if d.History.regression then "REGRESSION" else "ok")
              d.History.metric
              (Metrics.float_repr d.History.before)
              (Metrics.float_repr d.History.after)
              d.History.delta_percent gate)
          deltas;
        let regressed = History.regressions deltas in
        if regressed <> [] then begin
          Printf.eprintf "compare: %d metric(s) regressed\n" (List.length regressed);
          exit 1
        end
        else print_endline "no regressions"
  in
  let before_term =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BEFORE"
             ~doc:"Baseline: $(b,LEDGER.jsonl)[@N] or a flat JSON artifact \
                   ($(b,BENCH_*.json), $(b,manifest.json)).")
  in
  let after_term =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"AFTER" ~doc:"Candidate, same forms as $(docv,BEFORE).")
  in
  let tolerance_term =
    Arg.(value & opt (some float) None
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Override the higher-is-better gates' tolerance percent \
                   (default: 50 for throughput/speedup, 5 for R-squared; \
                   $(b,failed_jobs) always gates at 0).")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two runs' metrics and exit non-zero on regression."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Compares the metrics the two operands share, applying per-suffix \
              threshold rules (_per_sec and speedup higher-better within \
              tolerance, r_squared within 5%, failed_jobs must not grow). \
              Operands are history-ledger records ($(b,history.jsonl@-2) is \
              the second-newest) or benchmark JSON artifacts. Exit status: 0 \
              clean, 1 regression, 2 usage or unreadable operand. $(b,make \
              check) runs this sentinel over two fresh quick campaigns.";
         ])
    Term.(const run $ before_term $ after_term $ tolerance_term)

(* ---- content-addressed run bundles -------------------------------- *)

let bundle_cmd =
  let module B = Pi_campaign.Bundle in
  let dir_pos n docv doc = Arg.(required & pos n (some string) None & info [] ~docv ~doc) in
  let print_problems (report : B.report) =
    List.iter
      (fun (p : B.problem) -> Printf.eprintf "  %s: %s\n" p.B.path p.B.reason)
      report.B.problems
  in
  let verify_cmd =
    let run dir =
      match B.verify ~dir with
      | Error msg ->
          Printf.eprintf "bundle verify: %s\n" msg;
          exit 2
      | Ok (m, report) ->
          if B.ok report then
            Printf.printf "bundle %s: %s %s ok — %d files verified, %d artifacts pinned\n"
              dir m.B.kind m.B.label report.B.checked (List.length m.B.artifacts)
          else begin
            Printf.eprintf "bundle verify: %s FAILED (%d problem(s))\n" dir
              (List.length report.B.problems);
            print_problems report;
            exit 1
          end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Re-hash every pinned artifact of a bundle against its manifest and \
               SHA256SUMS.txt; exit 1 on any mismatch.")
      Term.(const run $ dir_pos 0 "BUNDLE" "Bundle directory to verify.")
  in
  let replay_cmd =
    let out_term =
      Arg.(value & opt (some string) None
           & info [ "out" ] ~docv:"DIR"
               ~doc:"Where to materialize the replay bundle (default: \
                     $(b,BUNDLE.replay)).")
    in
    let jobs_term =
      Arg.(value & opt (some int) None
           & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Scheduler domains for the re-run.")
    in
    let workers_term =
      Arg.(value & opt (some int) None
           & info [ "workers" ] ~docv:"N"
               ~doc:"Re-run on $(docv) worker processes (bit-identity makes this \
                     immaterial to the comparison).")
    in
    let run dir out jobs workers =
      (* Replay only a bundle that verifies: re-running from tampered
         pinned inputs would "reproduce" garbage. *)
      (match B.verify ~dir with
      | Error msg ->
          Printf.eprintf "bundle replay: %s\n" msg;
          exit 2
      | Ok (_, report) when not (B.ok report) ->
          Printf.eprintf "bundle replay: %s fails verification; refusing to replay\n" dir;
          print_problems report;
          exit 1
      | Ok _ -> ());
      let m = match B.load ~dir with Ok m -> m | Error _ -> assert false in
      if m.B.kind <> "campaign" then begin
        Printf.eprintf "bundle replay: only campaign bundles can be replayed (this is %S)\n"
          m.B.kind;
        exit 2
      end;
      let config = Pi_campaign.Coordinator.config_of_args m.B.config_args in
      let digest = Pi_campaign.Obs_cache.config_digest config in
      if digest <> m.B.config_digest then begin
        Printf.eprintf
          "bundle replay: config digest mismatch (bundle %s, rebuilt %s): this build \
           does not reproduce the bundle's config\n"
          m.B.config_digest digest;
        exit 2
      end;
      let benches =
        List.map
          (fun name ->
            match Pi_workloads.Spec.find name with
            | bench -> bench
            | exception Not_found ->
                Printf.eprintf "bundle replay: bundle names unknown benchmark %S\n" name;
                exit 2)
          m.B.benches
      in
      let out = match out with Some o -> o | None -> dir ^ ".replay" in
      let n_workers = match workers with Some w when w >= 2 -> w | _ -> 0 in
      let coordinator =
        if n_workers >= 2 then
          Some
            (Pi_campaign.Coordinator.create ~workers:n_workers
               ~config_args:m.B.config_args ())
        else None
      in
      let observe = Option.map Pi_campaign.Coordinator.observe_hook coordinator in
      (* No observation cache: a replay recomputes everything from the
         pinned inputs — that is the point. *)
      let result =
        Fun.protect
          ~finally:(fun () -> Option.iter Pi_campaign.Coordinator.shutdown coordinator)
          (fun () ->
            Pi_campaign.Campaign.run ~config ?jobs ?observe
              ~config_args:m.B.config_args ~label:m.B.label ~n_layouts:m.B.n_layouts
              benches)
      in
      if not (Pi_campaign.Campaign.succeeded result) then begin
        Printf.eprintf "bundle replay: the re-run campaign had failed jobs\n";
        exit 1
      end;
      let rm =
        B.of_campaign ~dir:out ~workers:(if n_workers >= 2 then n_workers else 1) result
      in
      let outputs (manifest : B.manifest) =
        List.filter (fun (a : B.artifact) -> a.B.role = B.Output) manifest.B.artifacts
      in
      let mismatches = ref 0 in
      List.iter
        (fun (a : B.artifact) ->
          match
            List.find_opt
              (fun (r : B.artifact) -> r.B.rel_path = a.B.rel_path)
              (outputs rm)
          with
          | None ->
              incr mismatches;
              Printf.eprintf "MISMATCH  %s: replay produced no such output\n" a.B.rel_path
          | Some r when r.B.sha256 <> a.B.sha256 || r.B.bytes <> a.B.bytes ->
              incr mismatches;
              Printf.eprintf "MISMATCH  %s: bundle %s (%d bytes), replay %s (%d bytes)\n"
                a.B.rel_path a.B.sha256 a.B.bytes r.B.sha256 r.B.bytes
          | Some _ -> Printf.printf "identical %s\n" a.B.rel_path)
        (outputs m);
      List.iter
        (fun (r : B.artifact) ->
          if
            not
              (List.exists (fun (a : B.artifact) -> a.B.rel_path = r.B.rel_path) (outputs m))
          then begin
            incr mismatches;
            Printf.eprintf "MISMATCH  %s: replay produced an extra output\n" r.B.rel_path
          end)
        (outputs rm);
      Printf.printf "replay bundle: %s\n" out;
      if !mismatches > 0 then begin
        Printf.eprintf "bundle replay: %d output(s) differ from the original run\n"
          !mismatches;
        exit 1
      end
      else
        Printf.printf "replay reproduced %d output(s) byte-for-byte\n"
          (List.length (outputs m))
    in
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Re-run a campaign bundle from its pinned inputs and compare every \
               output byte-for-byte; exit 1 unless identical.")
      Term.(const run
            $ dir_pos 0 "BUNDLE" "Bundle directory to replay."
            $ out_term $ jobs_term $ workers_term)
  in
  let diff_cmd =
    let tolerance_term =
      Arg.(value & opt (some float) None
           & info [ "tolerance" ] ~docv:"PCT"
               ~doc:"Override the higher-is-better gates' tolerance percent \
                     ($(b,failed_jobs) always gates at 0).")
    in
    let run before_dir after_dir tolerance =
      let load dir =
        match Pi_campaign.Bundle.load ~dir with
        | Ok m -> m
        | Error msg ->
            Printf.eprintf "bundle diff: %s: %s\n" dir msg;
            exit 2
      in
      let before = load before_dir and after = load after_dir in
      let rules =
        match tolerance with
        | None -> History.default_rules
        | Some tol ->
            List.map
              (fun (r : History.rule) ->
                match r.History.direction with
                | History.Higher_better -> { r with History.tol_percent = tol }
                | History.Lower_better -> r)
              History.default_rules
      in
      let deltas = B.diff ~rules ~before ~after () in
      if deltas = [] then begin
        Printf.eprintf "bundle diff: %s and %s share no metrics\n" before_dir after_dir;
        exit 2
      end;
      Printf.printf "bundle diff %s (%s) -> %s (%s)\n" before_dir before.B.label after_dir
        after.B.label;
      List.iter
        (fun (d : History.delta) ->
          let gate =
            match d.History.rule with
            | Some r ->
                Printf.sprintf "  [%s, tol %g%%]"
                  (match r.History.direction with
                  | History.Higher_better -> "higher is better"
                  | History.Lower_better -> "lower is better")
                  r.History.tol_percent
            | None -> ""
          in
          Printf.printf "%-10s %-28s %14s -> %14s  %+8.2f%%%s\n"
            (if d.History.regression then "REGRESSION" else "ok")
            d.History.metric
            (Metrics.float_repr d.History.before)
            (Metrics.float_repr d.History.after)
            d.History.delta_percent gate)
        deltas;
      let regressed = History.regressions deltas in
      if regressed <> [] then begin
        Printf.eprintf "bundle diff: %d metric(s) regressed\n" (List.length regressed);
        exit 1
      end
      else print_endline "no regressions"
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Compare two bundles' metric bags under the interferometry-compare \
               threshold rules; exit 1 on regression.")
      Term.(const run
            $ dir_pos 0 "BEFORE" "Baseline bundle directory."
            $ dir_pos 1 "AFTER" "Candidate bundle directory."
            $ tolerance_term)
  in
  Cmd.group
    (Cmd.info "bundle"
       ~doc:"Verify, replay and diff content-addressed run bundles."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "A run bundle (campaign/sweep $(b,--bundle DIR)) pins a run's inputs \
              and outputs by SHA-256 under a canonical-JSON manifest. $(b,verify) \
              re-hashes everything and fails on a single flipped byte; $(b,replay) \
              re-runs the campaign from the pinned inputs and accepts only \
              byte-identical outputs; $(b,diff) gates one bundle against another \
              with the same threshold rules as $(b,interferometry compare). See \
              docs/BUNDLES.md.";
         ])
    [ verify_cmd; replay_cmd; diff_cmd ]

let campaign_worker_cmd =
  (* Spawned by `campaign --workers N`; not for interactive use. *)
  Cmd.v
    (Cmd.info "campaign-worker"
       ~doc:"Internal: serve observation jobs over stdin/stdout frames for \
             $(b,campaign --workers). Spawned by the coordinator; reads \
             length-prefixed requests until EOF.")
    Term.(const (fun () -> Pi_campaign.Coordinator.worker_main ()) $ const ())

(* ---- the pi_serve daemon and its thin client ---------------------- *)

let state_dir_term =
  Arg.(value & opt string "_serve"
       & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Daemon state directory: the WAL job ledger, the observation \
                 cache, persisted result documents and the serve.json port \
                 file all live here.")

let client_port_term =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Daemon port; defaults to what serve.json in the state \
                 directory records.")

let connect state_dir port =
  match Pi_serve.Client.resolve ?port ~state_dir () with
  | Ok conn -> conn
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let serve_cmd =
  let run state_dir port capacity workers scrape_interval no_trace_jobs trace_capacity
      metrics_out trace_out =
    with_obs ~metrics_out ~trace_out (fun () ->
        Pi_serve.Server.run
          {
            Pi_serve.Server.state_dir;
            port;
            queue_capacity = capacity;
            workers;
            scrape_interval;
            trace_jobs = not no_trace_jobs;
            trace_capacity;
          })
  in
  let scrape_interval_term =
    Arg.(value & opt float 1.0
         & info [ "scrape-interval" ] ~docv:"SECONDS"
             ~doc:"Flight-recorder cadence: the background loop folds a metrics \
                   scrape into the /api/timeseries ring buffers every $(docv) \
                   seconds; 0 disables the loop.")
  in
  let no_trace_jobs_term =
    Arg.(value & flag
         & info [ "no-trace-jobs" ]
             ~doc:"Disable per-job span traces (GET /api/jobs/ID/trace answers \
                   404).")
  in
  let trace_capacity_term =
    Arg.(value & opt int 32
         & info [ "trace-capacity" ] ~docv:"N"
             ~doc:"Completed-job traces kept in memory (LRU; older traces are \
                   evicted).")
  in
  let port_term =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port to listen on (loopback only); 0 picks an ephemeral \
                   port, recorded in serve.json.")
  in
  let capacity_term =
    Arg.(value & opt int 64
         & info [ "queue-capacity" ] ~docv:"N"
             ~doc:"Admission bound: submissions beyond $(docv) queued jobs are \
                   rejected with 429.")
  in
  let workers_term =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N" ~doc:"Job worker threads.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the interferometry daemon (measure/predict/campaign over HTTP)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Serves measurement, prediction and campaign jobs over HTTP/1.1 on \
              loopback. Every accepted submission is appended to a WAL-journaled \
              job ledger (fsynced before the acknowledgement) and observations \
              are persisted to the on-disk cache as they complete, so a daemon \
              killed at any point — SIGKILL included — recovers on restart by \
              replaying the ledger and resumes with exactly-once, bit-identical \
              results. SIGTERM drains gracefully: queued jobs finish, new \
              submissions get 503. See docs/SERVING.md.";
         ])
    Term.(const run $ state_dir_term $ port_term $ capacity_term $ workers_term
          $ scrape_interval_term $ no_trace_jobs_term $ trace_capacity_term
          $ metrics_out_term $ trace_out_term)

let submit_cmd =
  let run state_dir port client wait body =
    let conn = connect state_dir port in
    match Pi_serve.Client.submit ?client conn ~body with
    | Error msg ->
        Printf.eprintf "submit: %s\n" msg;
        exit 2
    | Ok ack -> (
        print_endline (Pi_campaign.Telemetry.to_string ack);
        if wait then
          let module J = Pi_campaign.Telemetry in
          let id =
            match ack with
            | J.Obj fields -> (
                match List.assoc_opt "id" fields with
                | Some (J.String id) -> id
                | _ ->
                    Printf.eprintf "submit: acknowledgement carries no job id\n";
                    exit 2)
            | _ ->
                Printf.eprintf "submit: malformed acknowledgement\n";
                exit 2
          in
          match Pi_serve.Client.wait_job conn ~id with
          | Ok doc -> print_string doc
          | Error msg ->
              Printf.eprintf "submit: %s\n" msg;
              exit 3)
  in
  let client_term =
    Arg.(value & opt (some string) None
         & info [ "client" ] ~docv:"NAME"
             ~doc:"Fairness key (the daemon round-robins across clients).")
  in
  let wait_term =
    Arg.(value & flag
         & info [ "wait" ]
             ~doc:"Block until the job finishes and print its result document.")
  in
  let body_term =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JSON"
             ~doc:"Submission body, e.g. \
                   '{\"kind\":\"measure\",\"bench\":\"429.mcf\",\"layouts\":12,\"quick\":true}'.")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a job to a running interferometry daemon.")
    Term.(const run $ state_dir_term $ client_port_term $ client_term $ wait_term
          $ body_term)

let job_id_term =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"JOB-ID" ~doc:"Job id from $(b,interferometry submit).")

let status_cmd =
  let run state_dir port id =
    match Pi_serve.Client.status (connect state_dir port) ~id with
    | Ok doc -> print_endline (Pi_campaign.Telemetry.to_string doc)
    | Error msg ->
        Printf.eprintf "status: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Print a daemon job's status document.")
    Term.(const run $ state_dir_term $ client_port_term $ job_id_term)

let result_cmd =
  let run state_dir port id =
    match Pi_serve.Client.result (connect state_dir port) ~id with
    | Ok doc -> print_string doc
    | Error msg ->
        Printf.eprintf "result: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "result"
       ~doc:"Print a finished daemon job's result document (exact persisted bytes).")
    Term.(const run $ state_dir_term $ client_port_term $ job_id_term)

let () =
  let doc = "Program interferometry: performance modelling by layout perturbation" in
  let info = Cmd.info "interferometry" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [
         list_cmd; trace_cmd; measure_cmd; model_cmd; blame_cmd; predict_cmd;
         sweep_cmd; cache_cmd; export_cmd; refit_cmd; report_cmd; phases_cmd;
         campaign_cmd; campaign_worker_cmd; bundle_cmd; perf_cmd; stats_cmd;
         history_cmd; compare_cmd; serve_cmd; submit_cmd; status_cmd; result_cmd;
       ]))
