# Convenience targets for CI and local use.

CLI = dune exec bin/interferometry_cli.exe --

.PHONY: all check test build campaign-smoke perf perf-smoke obs-smoke clean

all: build

build:
	dune build

test: check

# Tier-1 verification, plus a small perf smoke that fails if the compiled
# replay path diverges from the legacy pipeline or regresses below it.
check:
	dune build && dune runtest
	$(MAKE) perf-smoke
	$(MAKE) obs-smoke

# Full pipeline microbenchmark; writes BENCH_pipeline.json.
perf:
	dune exec bench/perf.exe

# Tiny configuration of the same benchmark: correctness gate, not a timing.
perf-smoke:
	PI_PERF_SCALE=2 PI_PERF_LAYOUTS=2 PI_PERF_OUT=- dune exec bench/perf.exe

# Tiny cold campaign with both observability artifacts; asserts the metric
# scrape accounts for every computed job and that a trace was written.
obs-smoke:
	rm -rf _obs-smoke && mkdir -p _obs-smoke
	$(CLI) campaign --quick --bench 400.perlbench --layouts 4 --jobs 2 \
	  --manifest _obs-smoke/manifest.json \
	  --metrics-out _obs-smoke/metrics.prom --trace-out _obs-smoke/trace.json
	grep -q '^pi_obs_observations_total 4$$' _obs-smoke/metrics.prom
	grep -q '"traceEvents"' _obs-smoke/trace.json
	@echo "obs-smoke OK: scrape accounts for all 4 jobs, trace written"

# A 2-benchmark quick-config campaign exercising the parallel scheduler,
# the observation cache and the telemetry stream end to end. Run it twice:
# the second invocation should report every job as a cache hit.
campaign-smoke:
	$(CLI) campaign --quick --bench 400.perlbench --bench 456.hmmer \
	  --layouts 8 --jobs 2 --cache-dir _campaign-cache \
	  --events _campaign-cache/events.jsonl

clean:
	dune clean
	rm -rf _campaign-cache _obs-smoke
