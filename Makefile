# Convenience targets for CI and local use.

CLI = dune exec bin/interferometry_cli.exe --

.PHONY: all check test build campaign-smoke clean

all: build

build:
	dune build

test: check

# Tier-1 verification.
check:
	dune build && dune runtest

# A 2-benchmark quick-config campaign exercising the parallel scheduler,
# the observation cache and the telemetry stream end to end. Run it twice:
# the second invocation should report every job as a cache hit.
campaign-smoke:
	$(CLI) campaign --quick --bench 400.perlbench --bench 456.hmmer \
	  --layouts 8 --jobs 2 --cache-dir _campaign-cache \
	  --events _campaign-cache/events.jsonl

clean:
	dune clean
	rm -rf _campaign-cache
