# Convenience targets for CI and local use.

CLI = dune exec bin/interferometry_cli.exe --

.PHONY: all check test build campaign-smoke perf perf-smoke obs-smoke resilience-smoke sweep-smoke cache-sweep-smoke surrogate-smoke serve-smoke history-smoke bundle-smoke clean

all: build

build:
	dune build

test: check

# Tier-1 verification, plus a small perf smoke that fails if the compiled
# replay path diverges from the legacy pipeline or regresses below it.
check:
	dune build && dune runtest
	$(MAKE) perf-smoke
	$(MAKE) sweep-smoke
	$(MAKE) cache-sweep-smoke
	$(MAKE) surrogate-smoke
	$(MAKE) obs-smoke
	$(MAKE) resilience-smoke
	$(MAKE) serve-smoke
	$(MAKE) history-smoke
	$(MAKE) bundle-smoke

# Full pipeline + fused-sweep + flight-recorder + steered-sweep
# microbenchmarks; writes BENCH_pipeline.json, BENCH_sweep.json,
# BENCH_cache_sweep.json, BENCH_recorder.json and BENCH_surrogate.json,
# gates both fused axes at 3x their per-config loops, the flight
# recorder's sweep overhead at 5% and the surrogate's prune factor at 5x
# (>=5x fewer full-lane replays at <=1% max predicted CPI error), and
# appends every result to the history.jsonl run-history ledger
# (PI_HISTORY_OUT).
perf:
	PI_SWEEP_GATE=3 PI_CACHE_SWEEP_GATE=3 PI_RECORDER_GATE=5 \
	  PI_SURROGATE_GATE=5 dune exec bench/perf.exe

# Tiny configuration of the same benchmarks: correctness gate, not a timing
# (the sweep and recorder gates are disabled; bit-identity across paths is
# still enforced, recorder included). No artifacts, no history appends.
perf-smoke:
	PI_PERF_SCALE=2 PI_PERF_LAYOUTS=2 PI_SWEEP_SCALE=1 PI_SWEEP_GATE=0 \
	  PI_CACHE_SWEEP_GATE=0 PI_RECORDER_GATE=0 PI_SURROGATE_GATE=0 \
	  PI_PERF_OUT=- PI_SWEEP_OUT=- \
	  PI_CACHE_SWEEP_OUT=- PI_RECORDER_OUT=- PI_SURROGATE_OUT=- \
	  PI_HISTORY_OUT=- dune exec bench/perf.exe

# Sharded fused sweep through the CLI: two domains, then a sequential
# per-config study, which must match the fused one bit for bit.
sweep-smoke:
	$(CLI) sweep 429.mcf --scale 1 --jobs 2 --check

# The same contract on the cache axis: a 2-domain sharded 100-geometry
# sweep, checked bit for bit against the sequential per-geometry loop.
cache-sweep-smoke:
	$(CLI) sweep 429.mcf --scale 1 --axis cache --jobs 2 --check

# The surrogate-steering acceptance bound, end to end. Leg 1 runs the
# steered-sweep benchmark and gates it: <=20% of grid lanes replayed
# (prune factor >= 5x), every predicted lane within 1% CPI of the golden
# full fused study, replayed lanes bit-identical. Leg 2 drives the same
# contract through the CLI's --max-err/--check path. Steering is
# deterministic, so this never flakes.
surrogate-smoke:
	dune exec bench/surrogate.exe
	$(CLI) sweep 183.equake --scale 1 --max-err 1.0 --check

# Tiny cold campaign with both observability artifacts; asserts the metric
# scrape accounts for every computed job and that a trace was written.
obs-smoke:
	rm -rf _obs-smoke && mkdir -p _obs-smoke
	$(CLI) campaign --quick --bench 400.perlbench --layouts 4 --jobs 2 \
	  --manifest _obs-smoke/manifest.json \
	  --metrics-out _obs-smoke/metrics.prom --trace-out _obs-smoke/trace.json
	grep -q '^pi_obs_observations_total 4$$' _obs-smoke/metrics.prom
	grep -q '"traceEvents"' _obs-smoke/trace.json
	@echo "obs-smoke OK: scrape accounts for all 4 jobs, trace written"

# A 2-benchmark quick-config campaign exercising the parallel scheduler,
# the observation cache and the telemetry stream end to end. Run it twice:
# the second invocation should report every job as a cache hit.
campaign-smoke:
	$(CLI) campaign --quick --bench 400.perlbench --bench 456.hmmer \
	  --layouts 8 --jobs 2 --cache-dir _campaign-cache \
	  --events _campaign-cache/events.jsonl

# Crash-safe campaign, end to end. Leg 1 "interrupts" a campaign with
# injected worker faults and no retries (exit 3, partial cache + manifest
# on disk). Leg 2 resumes from that manifest, recomputing only the killed
# jobs, and must leave a complete manifest. Leg 3 reruns the same spec
# with --retries and must recover by itself; its dataset must be
# byte-identical to the resumed one (faults and retries never change the
# science). Fault seeds are deterministic, so this never flakes.
resilience-smoke:
	rm -rf _resilience-smoke && mkdir -p _resilience-smoke
	! $(CLI) campaign --quick --bench 400.perlbench --bench 456.hmmer \
	  --layouts 6 --jobs 2 --cache-dir _resilience-smoke/cache \
	  --fault-inject rate=0.4,kind=exn,seed=2
	grep -q '"checkpoint":false' _resilience-smoke/cache/manifest.json
	grep -q '"complete":false' _resilience-smoke/cache/manifest.json
	$(CLI) campaign --resume _resilience-smoke/cache/manifest.json --jobs 2
	grep -q '"complete":true' _resilience-smoke/cache/manifest.json
	grep -q '"failed_jobs":0' _resilience-smoke/cache/manifest.json
	$(CLI) campaign --quick --bench 400.perlbench --bench 456.hmmer \
	  --layouts 6 --jobs 4 --cache-dir _resilience-smoke/retry \
	  --fault-inject rate=0.3,kind=exn,seed=1 --retries 3
	cmp _resilience-smoke/cache/400.perlbench.*.csv _resilience-smoke/retry/400.perlbench.*.csv
	cmp _resilience-smoke/cache/456.hmmer.*.csv _resilience-smoke/retry/456.hmmer.*.csv
	@echo "resilience-smoke OK: interrupt+resume complete, retried run bit-identical"

# Daemon crash-recovery, end to end: start `interferometry serve`, submit
# a job, SIGKILL the daemon mid-run, restart on the same state directory.
# The WAL replay must finish the job exactly once, and both the result
# document and the observation-cache CSVs must be byte-identical to an
# uninterrupted run on a fresh daemon (see docs/SERVING.md).
serve-smoke:
	dune build bin/interferometry_cli.exe
	bash scripts/serve_smoke.sh

# The perf-regression sentinel, end to end. Two identical quick campaigns
# append to one history ledger; comparing their records must be clean
# (the second run is fully cached, so its zero obs/sec must NOT trip the
# throughput gate). Then a forged 4x obs/sec collapse must make
# `interferometry compare` exit non-zero. Deterministic by construction.
history-smoke:
	dune build bin/interferometry_cli.exe
	rm -rf _history-smoke && mkdir -p _history-smoke
	$(CLI) campaign --quick --bench 429.mcf --layouts 4 --jobs 2 \
	  --cache-dir _history-smoke/a --history _history-smoke/history.jsonl
	$(CLI) campaign --quick --bench 429.mcf --layouts 4 --jobs 2 \
	  --cache-dir _history-smoke/b --history _history-smoke/history.jsonl
	$(CLI) history --ledger _history-smoke/history.jsonl
	$(CLI) compare _history-smoke/history.jsonl@0 _history-smoke/history.jsonl@1
	printf '{"obs_per_sec":1000,"r_squared":0.99,"failed_jobs":0}' > _history-smoke/base.json
	printf '{"obs_per_sec":250,"r_squared":0.99,"failed_jobs":0}' > _history-smoke/slow.json
	$(CLI) compare _history-smoke/base.json _history-smoke/base.json
	! $(CLI) compare _history-smoke/base.json _history-smoke/slow.json
	@echo "history-smoke OK: self-compare clean, injected regression caught"

# Distributed campaigns + content-addressed run bundles, end to end.
# Leg 1: a 2-worker campaign and a 1-worker campaign must leave
# bit-identical cache CSVs and bundle outputs (the --workers N invariant).
# Leg 2: the bundle must verify, replay byte-for-byte from its pinned
# inputs, and self-diff clean. Leg 3: one flipped byte in a pinned input
# must fail `bundle verify`, and a forged metric collapse must make
# `bundle diff` exit non-zero. Deterministic by construction.
bundle-smoke:
	dune build bin/interferometry_cli.exe
	rm -rf _bundle-smoke && mkdir -p _bundle-smoke
	$(CLI) campaign --quick --bench 429.mcf --layouts 6 --workers 2 \
	  --cache-dir _bundle-smoke/w2 --bundle _bundle-smoke/b2
	$(CLI) campaign --quick --bench 429.mcf --layouts 6 --workers 1 \
	  --cache-dir _bundle-smoke/w1 --bundle _bundle-smoke/b1
	cmp _bundle-smoke/w1/429.mcf.*.csv _bundle-smoke/w2/429.mcf.*.csv
	cmp _bundle-smoke/b1/outputs/429.mcf.csv _bundle-smoke/b2/outputs/429.mcf.csv
	$(CLI) bundle verify _bundle-smoke/b2
	$(CLI) bundle replay _bundle-smoke/b2 --out _bundle-smoke/b2.replay --workers 2
	cmp _bundle-smoke/b2/outputs/429.mcf.csv _bundle-smoke/b2.replay/outputs/429.mcf.csv
	$(CLI) bundle diff _bundle-smoke/b2 _bundle-smoke/b2
	cp -r _bundle-smoke/b2 _bundle-smoke/forged
	printf x | dd of=_bundle-smoke/forged/inputs/config.json bs=1 seek=3 conv=notrunc status=none
	! $(CLI) bundle verify _bundle-smoke/forged
	sed -i 's/"failed_jobs":[0-9.eE+-]*/"failed_jobs":5/' _bundle-smoke/forged/MANIFEST.json
	! $(CLI) bundle diff _bundle-smoke/b2 _bundle-smoke/forged
	@echo "bundle-smoke OK: workers bit-identical, replay byte-for-byte, forgeries caught"

clean:
	dune clean
	rm -rf _campaign-cache _obs-smoke _resilience-smoke _serve-smoke _serve \
	  _history-smoke _bundle-smoke history.jsonl
