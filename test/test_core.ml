(* Tests for the interferometry core: experiments, models, blame,
   significance and predictor evaluation. Small configurations keep this
   fast while exercising the full path. *)

module E = Interferometry.Experiment
module Model = Interferometry.Model
module Blame = Interferometry.Blame
module Significance = Interferometry.Significance
module Predict = Interferometry.Predict
module Linreg = Pi_stats.Linreg
module Spec = Pi_workloads.Spec

let quick = E.quick_config

let cached : (string, E.dataset) Hashtbl.t = Hashtbl.create 8

let dataset ?(n_layouts = 25) name =
  let key = Printf.sprintf "%s/%d" name n_layouts in
  match Hashtbl.find_opt cached key with
  | Some d -> d
  | None ->
      let d = E.run ~config:quick (Spec.find name) ~n_layouts in
      Hashtbl.replace cached key d;
      d

(* ---------------- Experiment ---------------- *)

let test_observation_reproducible () =
  let prepared = E.prepare ~config:quick (Spec.find "400.perlbench") in
  let a = E.observe_seed prepared 7 in
  let b = E.observe_seed prepared 7 in
  Alcotest.(check (float 0.0)) "same cpi" a.E.measurement.Pi_uarch.Counters.cpi
    b.E.measurement.Pi_uarch.Counters.cpi;
  Alcotest.(check (float 0.0)) "same mpki" a.E.measurement.Pi_uarch.Counters.mpki
    b.E.measurement.Pi_uarch.Counters.mpki

let test_observation_seed_matters () =
  let prepared = E.prepare ~config:quick (Spec.find "400.perlbench") in
  let a = E.observe_seed prepared 1 and b = E.observe_seed prepared 2 in
  Alcotest.(check bool) "different layouts measure differently" true
    (a.E.measurement.Pi_uarch.Counters.cpi <> b.E.measurement.Pi_uarch.Counters.cpi)

let test_extend_preserves_prefix () =
  let d = dataset ~n_layouts:10 "456.hmmer" in
  let grown = E.extend d ~n_layouts:15 in
  Alcotest.(check int) "grown" 15 (Array.length grown.E.observations);
  for i = 0 to 9 do
    Alcotest.(check (float 0.0)) "prefix intact"
      d.E.observations.(i).E.measurement.Pi_uarch.Counters.cpi
      grown.E.observations.(i).E.measurement.Pi_uarch.Counters.cpi
  done;
  (* Extending to a smaller count is a no-op. *)
  let same = E.extend grown ~n_layouts:5 in
  Alcotest.(check int) "no shrink" 15 (Array.length same.E.observations)

let test_columns_consistent () =
  let d = dataset "456.hmmer" in
  Alcotest.(check int) "cpis" 25 (Array.length (E.cpis d));
  Alcotest.(check int) "mpkis" 25 (Array.length (E.mpkis d));
  Alcotest.(check int) "l1i" 25 (Array.length (E.l1i_mpkis d));
  Alcotest.(check int) "l1d" 25 (Array.length (E.l1d_mpkis d));
  Alcotest.(check int) "l2" 25 (Array.length (E.l2_mpkis d));
  Array.iter (fun v -> Alcotest.(check bool) "cpi positive" true (v > 0.0)) (E.cpis d)

let test_warmup_fraction_applied () =
  let prepared = E.prepare ~config:quick (Spec.find "456.hmmer") in
  let blocks = Pi_isa.Trace.blocks_executed prepared.E.trace in
  Alcotest.(check int) "quarter of the trace"
    (int_of_float (0.25 *. float_of_int blocks))
    prepared.E.warmup_blocks

(* ---------------- Model ---------------- *)

let test_model_fit_fields () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  Alcotest.(check string) "name" "400.perlbench" m.Model.benchmark;
  Alcotest.(check int) "n" 25 m.Model.n_layouts;
  Alcotest.(check bool) "positive slope on a branchy code" true
    (m.Model.regression.Linreg.slope > 0.0);
  Alcotest.(check bool) "perfect PI brackets intercept" true
    (m.Model.perfect_prediction.Linreg.lower <= m.Model.regression.Linreg.intercept
    && m.Model.regression.Linreg.intercept <= m.Model.perfect_prediction.Linreg.upper)

let test_model_improvement_math () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  let from_mpki = m.Model.mean_mpki in
  let full = Model.improvement_percent m ~from_mpki ~to_mpki:0.0 in
  let half = Model.improvement_percent m ~from_mpki ~to_mpki:(from_mpki /. 2.0) in
  Alcotest.(check (float 1e-9)) "halving gives half the gain" full (2.0 *. half);
  Alcotest.(check bool) "positive" true (full > 0.0)

let test_model_mpki_reduction () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  match Model.mpki_reduction_for_cpi_gain m ~at_mpki:m.Model.mean_mpki ~gain_percent:10.0 with
  | None -> Alcotest.fail "expected a reduction estimate"
  | Some r ->
      Alcotest.(check bool) "a 10% CPI gain needs a large MPKI cut" true (r > 10.0);
      (* Consistency: applying that reduction should produce ~10% gain. *)
      let to_mpki = m.Model.mean_mpki *. (1.0 -. (r /. 100.0)) in
      let gain = Model.improvement_percent m ~from_mpki:m.Model.mean_mpki ~to_mpki in
      Alcotest.(check (float 0.2)) "roundtrip" 10.0 gain

let test_model_intervals_vs_level () =
  let d = dataset "400.perlbench" in
  let m = Model.fit d in
  let pi95 = Model.predict_cpi ~level:0.95 m ~mpki:0.0 in
  let pi99 = Model.predict_cpi ~level:0.99 m ~mpki:0.0 in
  Alcotest.(check bool) "99% wider than 95%" true
    (pi99.Linreg.upper -. pi99.Linreg.lower > pi95.Linreg.upper -. pi95.Linreg.lower)

let test_table1_row_format () =
  let d = dataset "400.perlbench" in
  let row = Model.table1_row (Model.fit d) in
  Alcotest.(check bool) "mentions benchmark" true
    (String.length row > 20
    && String.sub row 0 13 = "400.perlbench")

(* ---------------- Blame ---------------- *)

let test_blame_r2_ranges () =
  let a = Blame.attribute (dataset "400.perlbench") in
  List.iter
    (fun v -> Alcotest.(check bool) "r2 in [0,1]" true (v >= 0.0 && v <= 1.0))
    [ a.Blame.r2_mpki; a.Blame.r2_l1i; a.Blame.r2_l2; Blame.combined_r2 a ]

let test_blame_combined_dominates () =
  (* OLS with more predictors cannot explain less variance (tiny ridge
     tolerance aside). *)
  let a = Blame.attribute (dataset "400.perlbench") in
  let best = Float.max a.Blame.r2_mpki (Float.max a.Blame.r2_l1i a.Blame.r2_l2) in
  Alcotest.(check bool) "combined >= best single" true (Blame.combined_r2 a >= best -. 1e-6)

let test_blame_branchy_benchmark_blames_branches () =
  let a = Blame.attribute (dataset "462.libquantum") in
  Alcotest.(check bool) "libquantum variance is branch-driven" true
    (a.Blame.r2_mpki > 0.5 && a.Blame.r2_mpki > a.Blame.r2_l2)

let test_blame_average () =
  let a = Blame.attribute (dataset "400.perlbench") in
  let b = Blame.attribute (dataset "462.libquantum") in
  let avg = Blame.average [ a; b ] in
  Alcotest.(check string) "label" "Average" avg.Blame.benchmark;
  Alcotest.(check (float 1e-9)) "mean of r2" ((a.Blame.r2_mpki +. b.Blame.r2_mpki) /. 2.0)
    avg.Blame.r2_mpki

(* ---------------- Significance ---------------- *)

let test_significance_branchy_vs_stream () =
  let yes = Significance.test (dataset "462.libquantum") in
  Alcotest.(check bool) "libquantum significant" true yes.Significance.significant;
  let no = Significance.test (dataset "470.lbm") in
  Alcotest.(check bool) "lbm not significant" false no.Significance.significant

let test_significance_adaptive_growth () =
  (* lbm never becomes significant: adaptive sampling must stop at the
     cap having grown the dataset. *)
  let verdict, d =
    Significance.adaptive ~initial:6 ~step:6 ~max_samples:18 ~config:quick
      (Spec.find "470.lbm")
  in
  Alcotest.(check bool) "capped" true (Array.length d.E.observations >= 18);
  Alcotest.(check int) "verdict reflects sample count" (Array.length d.E.observations)
    verdict.Significance.samples_used

let test_significance_adaptive_stops_early () =
  let verdict, d =
    Significance.adaptive ~initial:12 ~step:12 ~max_samples:36 ~config:quick
      (Spec.find "462.libquantum")
  in
  Alcotest.(check bool) "significant immediately" true verdict.Significance.significant;
  Alcotest.(check int) "no extra batches" 12 (Array.length d.E.observations)

(* ---------------- Predict ---------------- *)

let test_predict_rows () =
  let d = dataset ~n_layouts:12 "400.perlbench" in
  let m = Model.fit d in
  let rows = Predict.evaluate d m in
  Alcotest.(check int) "real + 5 candidates + perfect" 7 (List.length rows);
  let real = List.hd rows in
  Alcotest.(check bool) "first row is the observed machine" true real.Predict.observed;
  let perfect = List.nth rows 6 in
  Alcotest.(check (float 0.0)) "perfect at zero MPKI" 0.0 perfect.Predict.mean_mpki;
  List.iter
    (fun e ->
      Alcotest.(check bool) "interval brackets estimate" true
        (e.Predict.cpi.Linreg.lower <= e.Predict.cpi.Linreg.estimate
        && e.Predict.cpi.Linreg.estimate <= e.Predict.cpi.Linreg.upper))
    rows

let test_predict_ltage_beats_real () =
  let d = dataset ~n_layouts:12 "400.perlbench" in
  let m = Model.fit d in
  let rows = Predict.evaluate d m in
  let find name = List.find (fun e -> e.Predict.predictor = name) rows in
  let real = find "real (measured)" and ltage = find "L-TAGE" in
  Alcotest.(check bool) "L-TAGE fewer mispredictions" true
    (ltage.Predict.mean_mpki < real.Predict.mean_mpki);
  Alcotest.(check bool) "and lower predicted CPI" true
    (ltage.Predict.cpi.Linreg.estimate < real.Predict.cpi.Linreg.estimate)

let test_predict_gas_family_monotone () =
  let d = dataset ~n_layouts:12 "400.perlbench" in
  let m = Model.fit d in
  let rows = Predict.evaluate d m in
  let mpki name = (List.find (fun e -> e.Predict.predictor = name) rows).Predict.mean_mpki in
  Alcotest.(check bool) "16KB <= 2KB (monotone-ish budget scaling)" true
    (mpki "GAs-16KB" <= mpki "GAs-2KB")

let test_summarize_suite () =
  let d = dataset ~n_layouts:12 "400.perlbench" in
  let m = Model.fit d in
  let rows = Predict.evaluate d m in
  let s = Predict.summarize_suite [ ("400.perlbench", rows) ] in
  Alcotest.(check bool) "real cpi positive" true (s.Predict.real_cpi > 0.0);
  Alcotest.(check int) "candidate + perfect rows" 6 (List.length s.Predict.rows)

(* ---------------- Dataset_io ---------------- *)

let test_csv_round_trip_refit () =
  (* The campaign observation cache replays CSV rows in place of
     simulation, so export -> import -> refit must reproduce the model
     coefficients exactly (the 17-digit rows round-trip every float). *)
  let d = dataset "400.perlbench" in
  let original = Model.fit d in
  let path = Filename.temp_file "pi-roundtrip" ".csv" in
  Interferometry.Dataset_io.save path d;
  (match Interferometry.Dataset_io.load_observations path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok observations ->
      Alcotest.(check int) "row count" 25 (Array.length observations);
      let refit =
        Model.fit (Interferometry.Dataset_io.reattach d.E.prepared observations)
      in
      Alcotest.(check (float 1e-9)) "slope survives the round trip"
        original.Model.regression.Linreg.slope refit.Model.regression.Linreg.slope;
      Alcotest.(check (float 1e-9)) "intercept survives the round trip"
        original.Model.regression.Linreg.intercept refit.Model.regression.Linreg.intercept;
      Alcotest.(check (float 1e-9)) "r^2 survives the round trip"
        original.Model.regression.Linreg.r_squared refit.Model.regression.Linreg.r_squared;
      Array.iteri
        (fun i (o : E.observation) ->
          Alcotest.(check (float 0.0)) "cpi bit-identical"
            d.E.observations.(i).E.measurement.Pi_uarch.Counters.cpi
            o.E.measurement.Pi_uarch.Counters.cpi)
        observations);
  Sys.remove path

(* ---------------- Knobs (environment configuration) ---------------- *)

let test_knobs_parse_int () =
  let module K = Interferometry.Knobs in
  let check_case label raw expect_value expect_warned =
    let value, warning = K.parse_int ~name:"PI_TEST" ~default:7 raw in
    Alcotest.(check int) (label ^ ": value") expect_value value;
    Alcotest.(check bool) (label ^ ": warned") expect_warned (warning <> None)
  in
  check_case "unset" None 7 false;
  check_case "valid" (Some "12") 12 false;
  check_case "whitespace tolerated" (Some " 3 ") 3 false;
  check_case "zero rejected" (Some "0") 7 true;
  check_case "negative rejected" (Some "-4") 7 true;
  check_case "garbage rejected" (Some "fast") 7 true;
  check_case "float rejected" (Some "2.5") 7 true;
  (* The warning must name the knob and the fallback so the run header is
     actionable. *)
  match K.parse_int ~name:"PI_JOBS" ~default:9 (Some "-1") with
  | _, Some msg ->
      Alcotest.(check bool) "names knob" true
        (String.length msg >= 7 && String.sub msg 0 7 = "PI_JOBS");
      let contains affix =
        let n = String.length affix in
        let rec find i =
          i + n <= String.length msg && (String.sub msg i n = affix || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) "mentions default" true (contains "default 9")
  | _, None -> Alcotest.fail "expected a warning"

let test_knobs_env_int_warn_sink () =
  let module K = Interferometry.Knobs in
  let warned = ref [] in
  Unix.putenv "PI_KNOB_TEST" "banana";
  let v = K.env_int ~warn:(fun m -> warned := m :: !warned) "PI_KNOB_TEST" 5 in
  Unix.putenv "PI_KNOB_TEST" "11";
  let v' = K.env_int ~warn:(fun m -> warned := m :: !warned) "PI_KNOB_TEST" 5 in
  Alcotest.(check int) "fallback on garbage" 5 v;
  Alcotest.(check int) "valid value" 11 v';
  Alcotest.(check int) "exactly one warning" 1 (List.length !warned)

let test_knobs_describe () =
  let module K = Interferometry.Knobs in
  Alcotest.(check string) "render" "PI_SCALE=8 PI_SEED=1"
    (K.describe [ ("PI_SCALE", 8); ("PI_SEED", 1) ]);
  Alcotest.(check string) "empty" "" (K.describe [])

let suite =
  [
    ( "core.experiment",
      [
        Alcotest.test_case "observation reproducible" `Quick test_observation_reproducible;
        Alcotest.test_case "seed matters" `Quick test_observation_seed_matters;
        Alcotest.test_case "extend preserves prefix" `Quick test_extend_preserves_prefix;
        Alcotest.test_case "columns consistent" `Quick test_columns_consistent;
        Alcotest.test_case "warmup fraction" `Quick test_warmup_fraction_applied;
      ] );
    ( "core.model",
      [
        Alcotest.test_case "fit fields" `Quick test_model_fit_fields;
        Alcotest.test_case "improvement math" `Quick test_model_improvement_math;
        Alcotest.test_case "mpki reduction" `Quick test_model_mpki_reduction;
        Alcotest.test_case "interval levels" `Quick test_model_intervals_vs_level;
        Alcotest.test_case "table1 row" `Quick test_table1_row_format;
      ] );
    ( "core.blame",
      [
        Alcotest.test_case "r2 ranges" `Quick test_blame_r2_ranges;
        Alcotest.test_case "combined dominates" `Quick test_blame_combined_dominates;
        Alcotest.test_case "libquantum blames branches" `Quick
          test_blame_branchy_benchmark_blames_branches;
        Alcotest.test_case "average" `Quick test_blame_average;
      ] );
    ( "core.significance",
      [
        Alcotest.test_case "branchy vs stream" `Quick test_significance_branchy_vs_stream;
        Alcotest.test_case "adaptive growth" `Quick test_significance_adaptive_growth;
        Alcotest.test_case "adaptive early stop" `Quick test_significance_adaptive_stops_early;
      ] );
    ( "core.predict",
      [
        Alcotest.test_case "rows" `Quick test_predict_rows;
        Alcotest.test_case "ltage beats real" `Quick test_predict_ltage_beats_real;
        Alcotest.test_case "gas family monotone" `Quick test_predict_gas_family_monotone;
        Alcotest.test_case "summarize suite" `Quick test_summarize_suite;
      ] );
    ( "core.dataset_io",
      [
        Alcotest.test_case "CSV round-trip refit" `Quick test_csv_round_trip_refit;
      ] );
    ( "core.knobs",
      [
        Alcotest.test_case "parse_int" `Quick test_knobs_parse_int;
        Alcotest.test_case "env_int warn sink" `Quick test_knobs_env_int_warn_sink;
        Alcotest.test_case "describe" `Quick test_knobs_describe;
      ] );
  ]
