(* Tests for pi_uarch: BTB, caches, timing pipeline, counter protocol and
   the machine configuration. *)

module Btb = Pi_uarch.Btb
module Cache = Pi_uarch.Cache
module Pipeline = Pi_uarch.Pipeline
module Machine = Pi_uarch.Machine
module Counters = Pi_uarch.Counters
module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior
module Interp = Pi_isa.Interp
module Placement = Pi_layout.Placement

(* ---------------- BTB ---------------- *)

let test_btb_miss_then_hit () =
  let btb = Btb.create ~sets:16 ~ways:2 in
  Alcotest.(check bool) "cold miss" false (Btb.lookup_update btb ~pc:0x1000 ~target:0x2000);
  Alcotest.(check bool) "then hit" true (Btb.lookup_update btb ~pc:0x1000 ~target:0x2000)

let test_btb_wrong_target () =
  let btb = Btb.create ~sets:16 ~ways:2 in
  ignore (Btb.lookup_update btb ~pc:0x1000 ~target:0x2000);
  Alcotest.(check bool) "stale target" false (Btb.lookup_update btb ~pc:0x1000 ~target:0x3000);
  Alcotest.(check bool) "retrained" true (Btb.lookup_update btb ~pc:0x1000 ~target:0x3000)

let test_btb_lru_eviction () =
  let btb = Btb.create ~sets:1 ~ways:2 in
  ignore (Btb.lookup_update btb ~pc:0x10 ~target:1);
  ignore (Btb.lookup_update btb ~pc:0x20 ~target:2);
  (* Touch 0x10 to make 0x20 the LRU, then insert a third entry. *)
  ignore (Btb.lookup_update btb ~pc:0x10 ~target:1);
  ignore (Btb.lookup_update btb ~pc:0x30 ~target:3);
  (* Check the survivor first: a miss lookup allocates and would evict it. *)
  Alcotest.(check bool) "MRU survivor" true (Btb.lookup_update btb ~pc:0x10 ~target:1);
  Alcotest.(check bool) "LRU victim evicted" false (Btb.lookup_update btb ~pc:0x20 ~target:2)

let test_btb_reset () =
  let btb = Btb.create ~sets:4 ~ways:2 in
  ignore (Btb.lookup_update btb ~pc:0x40 ~target:7);
  Btb.reset btb;
  Alcotest.(check bool) "cold after reset" false (Btb.lookup_update btb ~pc:0x40 ~target:7)

(* ---------------- Cache ---------------- *)

let small_geometry = { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 }
(* 8 sets x 2 ways x 64B. *)

let test_cache_geometry () =
  Alcotest.(check int) "sets" 8 (Cache.geometry_sets small_geometry);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Cache.geometry_sets: set count not a power of two") (fun () ->
      ignore (Cache.geometry_sets { Cache.size_bytes = 1536; assoc = 2; line_bytes = 64 }))

let test_cache_hit_miss () =
  let c = Cache.create small_geometry in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x0);
  Alcotest.(check bool) "hit" true (Cache.access c 0x0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 0x3f);
  Alcotest.(check bool) "next line miss" false (Cache.access c 0x40);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_conflict_misses () =
  let c = Cache.create small_geometry in
  (* Three lines mapping to set 0 in a 2-way cache: 0x0, 0x200, 0x400. *)
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x200);
  ignore (Cache.access c 0x400);
  Alcotest.(check bool) "first way evicted" false (Cache.access c 0x0)

let test_cache_lru_order () =
  let c = Cache.create small_geometry in
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x200);
  ignore (Cache.access c 0x0);
  (* 0x200 is now LRU. *)
  ignore (Cache.access c 0x400);
  Alcotest.(check bool) "MRU kept" true (Cache.access c 0x0);
  Alcotest.(check bool) "LRU gone" false (Cache.access c 0x200)

let test_cache_probe_pure () =
  let c = Cache.create small_geometry in
  Alcotest.(check bool) "probe cold" false (Cache.probe c 0x0);
  Alcotest.(check int) "probe does not count" 0 (Cache.accesses c);
  ignore (Cache.access c 0x0);
  Alcotest.(check bool) "probe warm" true (Cache.probe c 0x0)

let test_cache_fill_silent () =
  let c = Cache.create small_geometry in
  Cache.fill c 0x0;
  Alcotest.(check int) "fill counts no access" 0 (Cache.accesses c);
  Alcotest.(check int) "fill counts no miss" 0 (Cache.misses c);
  Alcotest.(check bool) "line installed" true (Cache.probe c 0x0)

let test_cache_fill_on_hit_promotes () =
  let c = Cache.create small_geometry in
  (* Set 0, 2 ways: A=0x0, B=0x200, C=0x400. After A,B the LRU is A. *)
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x200);
  (* Prefetch-fill A again: already resident, so the fill must PROMOTE it
     to MRU (making B the victim), not install a duplicate or no-op. *)
  Cache.fill c 0x0;
  Cache.fill c 0x400;
  Alcotest.(check bool) "promoted line survives" true (Cache.probe c 0x0);
  Alcotest.(check bool) "LRU line evicted" false (Cache.probe c 0x200);
  Alcotest.(check bool) "filled line resident" true (Cache.probe c 0x400)

let test_cache_touch_counts_and_promotes () =
  let c = Cache.create small_geometry in
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x200);
  Cache.touch c 0x0;
  (* touch is an access: it counts and updates recency. *)
  Alcotest.(check int) "touch counted" 3 (Cache.accesses c);
  ignore (Cache.access c 0x400);
  Alcotest.(check bool) "touched line is MRU" true (Cache.probe c 0x0);
  Alcotest.(check bool) "untouched line evicted" false (Cache.probe c 0x200)

(* The replay fetch loop inlines an MRU-hit fast path over [Cache.hot];
   its contract: way-0 tag match <=> a hit that needs no LRU movement. *)
let test_cache_hot_mru_fast_path () =
  let c = Cache.create small_geometry in
  let tags, set_mask, assoc, line_shift = Cache.hot c in
  let mru_hit addr =
    let line = addr lsr line_shift in
    tags.((line land set_mask) * assoc) = line
  in
  Alcotest.(check bool) "cold: no MRU hit" false (mru_hit 0x0);
  ignore (Cache.access c 0x0);
  Alcotest.(check bool) "MRU after access" true (mru_hit 0x0);
  ignore (Cache.access c 0x200);
  Alcotest.(check bool) "demoted line not MRU" false (mru_hit 0x0);
  Alcotest.(check bool) "but still resident" true (Cache.probe c 0x0);
  let before = Cache.accesses c in
  Cache.count_hit c;
  Alcotest.(check int) "count_hit increments accesses" (before + 1) (Cache.accesses c);
  Alcotest.(check int) "count_hit adds no miss" 2 (Cache.misses c)

let test_cache_access_range () =
  let c = Cache.create small_geometry in
  let misses = Cache.access_range c ~addr:0x10 ~bytes:100 in
  (* Spans lines 0x00 and 0x40. *)
  Alcotest.(check int) "two line misses" 2 misses;
  Alcotest.(check int) "zero on re-fetch" 0 (Cache.access_range c ~addr:0x10 ~bytes:100)

let test_cache_reset () =
  let c = Cache.create small_geometry in
  ignore (Cache.access c 0x0);
  Cache.reset c;
  Alcotest.(check int) "counters cleared" 0 (Cache.accesses c);
  Alcotest.(check bool) "contents cleared" false (Cache.access c 0x0)

(* ---------------- Pipeline ---------------- *)

(* A branch-free program: CPI must equal the static cost exactly, and with a
   big-enough cache there are no misses after warmup. *)
let straight_line_program ~trips =
  let b = B.create ~name:"straight" in
  let o = B.add_object b "a.o" in
  let main = B.proc b ~obj:o ~name:"main" [ B.for_ ~trips [ B.work 10 ] ] in
  B.entry b main;
  B.finish b

(* All-taken branches: with a static not-taken predictor every one
   mispredicts; with always-taken none do. Cycles must differ by exactly
   penalty * count. *)
let taken_branch_program ~trips =
  let b = B.create ~name:"taken-branches" in
  let o = B.add_object b "a.o" in
  let main =
    B.proc b ~obj:o ~name:"main"
      [ B.for_ ~trips [ B.if_ Behavior.Always_taken [ B.work 2 ] [ B.work 2 ] ] ]
  in
  B.entry b main;
  B.finish b

let run_with predictor ?(wrong_path = false) program =
  let trace = Interp.run program in
  let config =
    {
      Machine.xeon_e5440 with
      Pipeline.make_predictor = predictor;
      wrong_path;
      name = "test";
    }
  in
  (Pipeline.run config trace (Placement.natural program), trace)

let test_pipeline_mispredict_accounting () =
  let p = taken_branch_program ~trips:500 in
  let all_wrong, trace = run_with Pi_uarch.Perfect.always_not_taken p in
  let none_wrong, _ = run_with Pi_uarch.Perfect.perfect p in
  (* Every branch in this program is taken except the final loop exit,
     which static-not-taken gets right — hence count - 1. *)
  Alcotest.(check int) "all but the loop exit mispredicted"
    trace.Pi_isa.Trace.cond_branches
    (all_wrong.Pipeline.cond_mispredicts + 1);
  Alcotest.(check int) "none mispredicted" 0 none_wrong.Pipeline.cond_mispredicts;
  let expected_delta =
    float_of_int all_wrong.Pipeline.cond_mispredicts
    *. Machine.xeon_e5440.Pipeline.penalties.Pipeline.mispredict
  in
  Alcotest.(check (float 1e-6)) "cycles differ by penalty * count" expected_delta
    (all_wrong.Pipeline.cycles -. none_wrong.Pipeline.cycles)

let test_pipeline_cpi_floor () =
  let p = straight_line_program ~trips:2000 in
  let counts, _ = run_with Pi_uarch.Perfect.perfect p in
  let cpi = Pipeline.cpi counts in
  Alcotest.(check bool) "cpi in a sane band" true (cpi > 0.2 && cpi < 0.6)

let test_pipeline_warmup_reduces_instructions () =
  let p = straight_line_program ~trips:2000 in
  let trace = Interp.run p in
  let placement = Placement.natural p in
  let full = Pipeline.run Machine.xeon_e5440 trace placement in
  let warm = Pipeline.run ~warmup_blocks:2000 Machine.xeon_e5440 trace placement in
  Alcotest.(check bool) "fewer measured instructions" true
    (warm.Pipeline.instructions < full.Pipeline.instructions);
  Alcotest.(check bool) "still measuring" true (warm.Pipeline.instructions > 0)

let test_pipeline_perfect_btb () =
  let b = B.create ~name:"switchy" in
  let o = B.add_object b "a.o" in
  let main =
    B.proc b ~obj:o ~name:"main"
      [
        B.for_ ~trips:200
          [ B.switch Behavior.Selector.Random_target [| [ B.work 1 ]; [ B.work 2 ]; [ B.work 3 ] |] ];
      ]
  in
  B.entry b main;
  let p = B.finish b in
  let trace = Interp.run p in
  let placement = Placement.natural p in
  let oracle = Machine.with_perfect_prediction Machine.xeon_e5440 in
  let counts = Pipeline.run oracle trace placement in
  Alcotest.(check int) "no indirect mispredicts" 0 counts.Pipeline.indirect_mispredicts;
  Alcotest.(check (float 0.0)) "total MPKI zero" 0.0 (Pipeline.mpki counts);
  let real = Pipeline.run Machine.xeon_e5440 trace placement in
  Alcotest.(check bool) "real BTB misses on random targets" true
    (real.Pipeline.indirect_mispredicts > 0)

let test_pipeline_deterministic () =
  let p = taken_branch_program ~trips:300 in
  let a, _ = run_with Pi_uarch.Hybrid.xeon_like p in
  let b, _ = run_with Pi_uarch.Hybrid.xeon_like p in
  Alcotest.(check (float 0.0)) "same cycles" a.Pipeline.cycles b.Pipeline.cycles;
  Alcotest.(check int) "same mispredicts" a.Pipeline.cond_mispredicts b.Pipeline.cond_mispredicts

let test_pipeline_layout_changes_events_not_instructions () =
  let bench = Pi_workloads.Spec.find "400.perlbench" in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  let trace = Pi_layout.Run_limiter.trace p ~budget_blocks:15_000 in
  let run seed = Pipeline.run Machine.xeon_e5440 trace (Placement.make p ~seed) in
  let a = run 1 and b = run 2 in
  Alcotest.(check int) "instructions identical across layouts" a.Pipeline.instructions
    b.Pipeline.instructions;
  Alcotest.(check int) "branches identical across layouts" a.Pipeline.cond_branches
    b.Pipeline.cond_branches;
  Alcotest.(check bool) "cycles differ (interference)" true
    (a.Pipeline.cycles <> b.Pipeline.cycles)

(* ---------------- Counters ---------------- *)

let sample_counts =
  {
    Pipeline.cycles = 1_000_000.0;
    instructions = 800_000;
    cond_branches = 100_000;
    cond_mispredicts = 4_000;
    indirect_branches = 5_000;
    indirect_mispredicts = 1_000;
    btb_misses = 1_000;
    l1i_accesses = 300_000;
    l1i_misses = 2_000;
    l1d_accesses = 200_000;
    l1d_misses = 8_000;
    l2_accesses = 10_000;
    l2_misses = 3_000;
  }

let test_counters_ideal_math () =
  let m = Counters.ideal sample_counts in
  Alcotest.(check (float 1e-9)) "cpi" 1.25 m.Counters.cpi;
  Alcotest.(check (float 1e-9)) "mpki counts cond + indirect" 6.25 m.Counters.mpki;
  Alcotest.(check (float 1e-9)) "l1i mpki" 2.5 m.Counters.l1i_mpki;
  Alcotest.(check (float 1e-9)) "l2 mpki" 3.75 m.Counters.l2_mpki

let test_counters_no_noise_is_exact () =
  let m = Counters.measure ~noise:Counters.no_noise ~seed:5 sample_counts in
  let exact = Counters.ideal sample_counts in
  Alcotest.(check (float 1e-9)) "cpi exact" exact.Counters.cpi m.Counters.cpi;
  Alcotest.(check (float 1e-9)) "mpki exact" exact.Counters.mpki m.Counters.mpki

let test_counters_deterministic () =
  let a = Counters.measure ~seed:42 sample_counts in
  let b = Counters.measure ~seed:42 sample_counts in
  Alcotest.(check (float 0.0)) "reproducible" a.Counters.cpi b.Counters.cpi

let test_counters_median_rejects_spikes () =
  (* With frequent large spikes, the median-of-5 protocol must sit much
     closer to the true value than the worst single runs do. *)
  let noise = { Counters.default_noise with spike_probability = 0.3; spike_scale = 0.2 } in
  let exact = (Counters.ideal sample_counts).Counters.cpi in
  let protocol_err = ref 0.0 and single_err = ref 0.0 in
  for seed = 1 to 60 do
    let p = Counters.measure ~noise ~seed sample_counts in
    let s = Counters.measure_single_run ~noise ~seed sample_counts in
    protocol_err := !protocol_err +. Float.abs (p.Counters.cpi -. exact);
    single_err := !single_err +. Float.abs (s.Counters.cpi -. exact)
  done;
  Alcotest.(check bool) "median filter helps" true (!protocol_err < !single_err)

let test_counters_instructions_exact () =
  (* Retired instructions come from the run-length instrumentation and are
     never noisy. *)
  let m = Counters.measure ~seed:9 sample_counts in
  Alcotest.(check (float 0.0)) "instructions exact" 800_000.0 m.Counters.instructions

(* ---------------- Machine configs ---------------- *)

let test_machine_with_predictor_name () =
  let c = Machine.with_predictor Machine.xeon_e5440 ~name:"zzz" Pi_uarch.Perfect.perfect in
  Alcotest.(check string) "name suffixed" "xeon-e5440+zzz" c.Pipeline.name

let test_machine_without_wrong_path () =
  let c = Machine.without_wrong_path Machine.xeon_e5440 in
  Alcotest.(check bool) "flag off" false c.Pipeline.wrong_path

let suite =
  [
    ( "uarch.btb",
      [
        Alcotest.test_case "miss then hit" `Quick test_btb_miss_then_hit;
        Alcotest.test_case "wrong target" `Quick test_btb_wrong_target;
        Alcotest.test_case "LRU eviction" `Quick test_btb_lru_eviction;
        Alcotest.test_case "reset" `Quick test_btb_reset;
      ] );
    ( "uarch.cache",
      [
        Alcotest.test_case "geometry" `Quick test_cache_geometry;
        Alcotest.test_case "hit / miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "conflict misses" `Quick test_cache_conflict_misses;
        Alcotest.test_case "LRU order" `Quick test_cache_lru_order;
        Alcotest.test_case "probe is pure" `Quick test_cache_probe_pure;
        Alcotest.test_case "fill is silent" `Quick test_cache_fill_silent;
        Alcotest.test_case "fill on hit promotes" `Quick test_cache_fill_on_hit_promotes;
        Alcotest.test_case "touch counts and promotes" `Quick
          test_cache_touch_counts_and_promotes;
        Alcotest.test_case "hot MRU fast path" `Quick test_cache_hot_mru_fast_path;
        Alcotest.test_case "access range" `Quick test_cache_access_range;
        Alcotest.test_case "reset" `Quick test_cache_reset;
      ] );
    ( "uarch.pipeline",
      [
        Alcotest.test_case "mispredict accounting" `Quick test_pipeline_mispredict_accounting;
        Alcotest.test_case "cpi floor" `Quick test_pipeline_cpi_floor;
        Alcotest.test_case "warmup window" `Quick test_pipeline_warmup_reduces_instructions;
        Alcotest.test_case "perfect btb" `Quick test_pipeline_perfect_btb;
        Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
        Alcotest.test_case "layout invariants" `Quick
          test_pipeline_layout_changes_events_not_instructions;
      ] );
    ( "uarch.counters",
      [
        Alcotest.test_case "ideal math" `Quick test_counters_ideal_math;
        Alcotest.test_case "no-noise exact" `Quick test_counters_no_noise_is_exact;
        Alcotest.test_case "deterministic" `Quick test_counters_deterministic;
        Alcotest.test_case "median rejects spikes" `Quick test_counters_median_rejects_spikes;
        Alcotest.test_case "instructions exact" `Quick test_counters_instructions_exact;
      ] );
    ( "uarch.machine",
      [
        Alcotest.test_case "with_predictor name" `Quick test_machine_with_predictor_name;
        Alcotest.test_case "without wrong path" `Quick test_machine_without_wrong_path;
      ] );
  ]

(* ---------------- Cache property tests ---------------- *)

(* LRU inclusion (stack) property: any access that hits in a k-way cache
   also hits in a (k+1)-way cache of the same set count. *)
let prop_cache_lru_inclusion =
  QCheck.Test.make ~name:"LRU associativity inclusion property" ~count:60
    QCheck.(pair (int_range 1 100000) (list_of_size (QCheck.Gen.return 300) (int_bound 63)))
    (fun (_, lines) ->
      let small = Cache.create { Cache.size_bytes = 8 * 2 * 64; assoc = 2; line_bytes = 64 } in
      let big = Cache.create { Cache.size_bytes = 8 * 3 * 64; assoc = 3; line_bytes = 64 } in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          let hit_small = Cache.access small addr in
          let hit_big = Cache.access big addr in
          (not hit_small) || hit_big)
        lines)

let prop_cache_miss_count_bounded =
  QCheck.Test.make ~name:"misses never exceed accesses" ~count:60
    QCheck.(list_of_size (QCheck.Gen.return 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create small_geometry in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.misses c <= Cache.accesses c && Cache.accesses c = List.length addrs)

let prop_predictor_deterministic =
  QCheck.Test.make ~name:"predictors are deterministic functions of the stream" ~count:20
    QCheck.(list_of_size (QCheck.Gen.return 400) (pair (int_bound 0xFFFF) bool))
    (fun stream ->
      let run () =
        let p = Pi_uarch.Hybrid.xeon_like () in
        List.map (fun (pc, taken) -> p.Pi_uarch.Predictor.on_branch ~pc ~taken) stream
      in
      run () = run ())

let property_cases =
  ( "uarch.properties",
    [
      QCheck_alcotest.to_alcotest prop_cache_lru_inclusion;
      QCheck_alcotest.to_alcotest prop_cache_miss_count_bounded;
      QCheck_alcotest.to_alcotest prop_predictor_deterministic;
    ] )

let suite = suite @ [ property_cases ]

(* ---------------- Second machine ---------------- *)

let test_netburst_config () =
  let nb = Machine.netburst_like in
  Alcotest.(check bool) "deeper pipeline" true
    (nb.Pipeline.penalties.Pipeline.mispredict
    > Machine.xeon_e5440.Pipeline.penalties.Pipeline.mispredict);
  Alcotest.(check bool) "has a trace cache" true (nb.Pipeline.trace_cache <> None)

let test_netburst_steeper_slope () =
  (* The interferometry-visible misprediction cost tracks pipeline depth. *)
  let bench = Pi_workloads.Spec.find "456.hmmer" in
  let prepared =
    Interferometry.Experiment.prepare ~config:Interferometry.Experiment.quick_config bench
  in
  let slope machine =
    let n = 12 in
    let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let placement =
        Pi_layout.Placement.make prepared.Interferometry.Experiment.program ~seed:(i + 1)
      in
      let c =
        Pipeline.run ~warmup_blocks:prepared.Interferometry.Experiment.warmup_blocks machine
          prepared.Interferometry.Experiment.trace placement
      in
      xs.(i) <- Pipeline.mpki c;
      ys.(i) <- Pipeline.cpi c
    done;
    (Pi_stats.Linreg.fit xs ys).Pi_stats.Linreg.slope
  in
  let xeon = slope Machine.xeon_e5440 and netburst = slope Machine.netburst_like in
  Alcotest.(check bool)
    (Printf.sprintf "netburst slope %.4f > xeon slope %.4f" netburst xeon)
    true (netburst > xeon)

let machine_cases =
  ( "uarch.machines",
    [
      Alcotest.test_case "netburst config" `Quick test_netburst_config;
      Alcotest.test_case "netburst steeper slope" `Quick test_netburst_steeper_slope;
    ] )

let suite = suite @ [ machine_cases ]
