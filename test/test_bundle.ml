(* Content-addressed run bundles: the SHA-256 primitive against the FIPS
   180-4 vectors, canonical JSON ordering, bundle write/load/verify round
   trips, single-flipped-byte detection, and the metric diff gate. *)

module J = Pi_campaign.Telemetry
module Sha256 = Pi_campaign.Sha256
module Bundle = Pi_campaign.Bundle
module History = Pi_obs.History

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* ---------------- SHA-256 ---------------- *)

let test_sha256_fips_vectors () =
  (* FIPS 180-4 appendix test vectors — if these hold, the compression
     function, padding and length encoding are all right. *)
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256(%S)" (String.sub input 0 (min 16 (String.length input))))
        expect (Sha256.string input))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      (* One full block of 'a's exercises the exact-boundary padding path. *)
      ( String.make 64 'a',
        "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
    ]

let test_sha256_million_a () =
  Alcotest.(check string) "sha256('a' * 1_000_000)"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.string (String.make 1_000_000 'a'))

let test_sha256_file_streams () =
  (* File hashing must agree with string hashing, including across the
     64 KiB chunk boundary the streaming reader uses. *)
  let payload = String.init 100_000 (fun i -> Char.chr (i mod 251)) in
  let path = Filename.temp_file "pi-sha" ".bin" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc payload);
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check string) "file == string" (Sha256.string payload)
        (Sha256.file path))

(* ---------------- Canonical JSON ---------------- *)

let test_canonical_sorts_keys () =
  let messy =
    J.Obj
      [
        ("zebra", J.Int 1);
        ("alpha", J.Obj [ ("y", J.Bool true); ("x", J.List [ J.Obj [ ("b", J.Null); ("a", J.Int 2) ] ]) ]);
      ]
  in
  Alcotest.(check string) "recursive bytewise key sort"
    {|{"alpha":{"x":[{"a":2,"b":null}],"y":true},"zebra":1}|}
    (Bundle.canonical_string messy);
  (* Canonicalization is idempotent and content-determined: two
     permutations of the same object render — and therefore hash —
     identically. *)
  let permuted = J.Obj [ ("alpha", List.assoc "alpha" (match messy with J.Obj f -> f | _ -> [])); ("zebra", J.Int 1) ] in
  Alcotest.(check string) "permutation-invariant rendering"
    (Bundle.canonical_string messy)
    (Bundle.canonical_string permuted)

(* ---------------- Bundle round trip ---------------- *)

let write_fixture dir =
  Bundle.write ~dir ~kind:"campaign" ~label:"fixture" ~config_digest:"deadbeef"
    ~config_args:[ ("quick", J.Bool true); ("seed", J.Int 42) ]
    ~benches:[ "429.mcf" ] ~n_layouts:6 ~workers:2 ~created_at:0.0
    ~metrics:[ ("fit_r_squared", 0.9); ("failed_jobs", 0.0) ]
    ~inputs:[ ("config.json", "{\"quick\":true}\n") ]
    ~outputs:[ ("429.mcf.csv", "seed,cpi\n1,1.5\n2,1.6\n") ]
    ~meta:[ ("run_manifest.json", "{\"wall\":1.23}\n") ]
    ()

let test_bundle_write_load_verify () =
  let dir = Filename.concat (temp_dir "pi-bundle") "b" in
  let written = write_fixture dir in
  Alcotest.(check int) "two pinned artifacts" 2 (List.length written.Bundle.artifacts);
  (match Bundle.load ~dir with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok m ->
      Alcotest.(check string) "kind round-trips" "campaign" m.Bundle.kind;
      Alcotest.(check string) "label round-trips" "fixture" m.Bundle.label;
      Alcotest.(check int) "n_layouts round-trips" 6 m.Bundle.n_layouts;
      Alcotest.(check int) "workers round-trips" 2 m.Bundle.workers;
      Alcotest.(check (list string)) "artifact paths sorted"
        [ "inputs/config.json"; "outputs/429.mcf.csv" ]
        (List.map (fun a -> a.Bundle.rel_path) m.Bundle.artifacts);
      List.iter
        (fun (a : Bundle.artifact) ->
          Alcotest.(check int) "64-hex digest" 64 (String.length a.Bundle.sha256))
        m.Bundle.artifacts);
  match Bundle.verify ~dir with
  | Error msg -> Alcotest.failf "verify errored: %s" msg
  | Ok (_, report) ->
      Alcotest.(check bool) "pristine bundle verifies" true (Bundle.ok report);
      (* artifacts + MANIFEST.json + SHA256SUMS.txt cross-check *)
      Alcotest.(check bool) "re-hashed something" true (report.Bundle.checked >= 3)

let test_bundle_verify_catches_flip () =
  let dir = Filename.concat (temp_dir "pi-bundle") "b" in
  ignore (write_fixture dir : Bundle.manifest);
  (* Flip one byte of a pinned output. *)
  let target = Filename.concat dir "outputs/429.mcf.csv" in
  let bytes = Bytes.of_string (In_channel.with_open_bin target In_channel.input_all) in
  Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 1));
  Out_channel.with_open_bin target (fun oc -> Out_channel.output_bytes oc bytes);
  (match Bundle.verify ~dir with
  | Error msg -> Alcotest.failf "verify errored: %s" msg
  | Ok (_, report) ->
      Alcotest.(check bool) "flip detected" false (Bundle.ok report);
      Alcotest.(check bool) "problem names the file" true
        (List.exists
           (fun (p : Bundle.problem) -> p.Bundle.path = "outputs/429.mcf.csv")
           report.Bundle.problems));
  (* A deleted artifact is a problem too, not a crash. *)
  Sys.remove target;
  match Bundle.verify ~dir with
  | Error msg -> Alcotest.failf "verify errored on missing file: %s" msg
  | Ok (_, report) ->
      Alcotest.(check bool) "missing file detected" false (Bundle.ok report)

let test_bundle_load_rejects_garbage () =
  let dir = temp_dir "pi-bundle-garbage" in
  (match Bundle.load ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a bundle with no manifest");
  Out_channel.with_open_bin
    (Filename.concat dir Bundle.manifest_file)
    (fun oc -> Out_channel.output_string oc "not json");
  match Bundle.load ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded an unparsable manifest"

(* ---------------- Diff ---------------- *)

let test_bundle_diff_gates_regressions () =
  let dir = temp_dir "pi-bundle-diff" in
  let mk name metrics =
    let d = Filename.concat dir name in
    Bundle.write ~dir:d ~kind:"campaign" ~label:name ~config_digest:"d"
      ~config_args:[] ~benches:[] ~n_layouts:1 ~workers:1 ~created_at:0.0
      ~metrics ~inputs:[] ~outputs:[] ()
  in
  let before = mk "before" [ ("fit_r_squared", 0.90); ("failed_jobs", 0.0) ] in
  (* Self-diff is clean: identical metric bags regress nothing. *)
  let self = Bundle.diff ~before ~after:before () in
  Alcotest.(check bool) "self-diff has no regressions" false
    (List.exists (fun d -> d.History.regression) self);
  (* An r² collapse beyond the 5% rule is a regression... *)
  let worse = mk "worse" [ ("fit_r_squared", 0.50); ("failed_jobs", 0.0) ] in
  let deltas = Bundle.diff ~before ~after:worse () in
  Alcotest.(check bool) "r_squared collapse regresses" true
    (List.exists
       (fun d -> d.History.metric = "fit_r_squared" && d.History.regression)
       deltas);
  (* ...and any new failed job trips the zero-tolerance rule. *)
  let failing = mk "failing" [ ("fit_r_squared", 0.90); ("failed_jobs", 1.0) ] in
  let deltas = Bundle.diff ~before ~after:failing () in
  Alcotest.(check bool) "failed_jobs is zero-tolerance" true
    (List.exists
       (fun d -> d.History.metric = "failed_jobs" && d.History.regression)
       deltas)

let suite =
  [
    ( "bundle",
      [
        Alcotest.test_case "sha256: FIPS 180-4 vectors" `Quick test_sha256_fips_vectors;
        Alcotest.test_case "sha256: one-million-a vector" `Quick test_sha256_million_a;
        Alcotest.test_case "sha256: streamed file == string" `Quick
          test_sha256_file_streams;
        Alcotest.test_case "canonical JSON: recursive key sort" `Quick
          test_canonical_sorts_keys;
        Alcotest.test_case "write/load/verify round trip" `Quick
          test_bundle_write_load_verify;
        Alcotest.test_case "verify catches a flipped byte and a missing file" `Quick
          test_bundle_verify_catches_flip;
        Alcotest.test_case "load rejects missing/garbled manifests" `Quick
          test_bundle_load_rejects_garbage;
        Alcotest.test_case "diff applies the compare threshold rules" `Quick
          test_bundle_diff_gates_regressions;
      ] );
  ]
