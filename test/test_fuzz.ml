(* Fuzzing the builder -> interpreter -> pipeline path: random structured
   programs must lower to valid CFGs, interpret deterministically within
   their block budget, and simulate without exceptions under random
   placements. This is the property net under the entire workload layer. *)

module B = Pi_isa.Builder
module Behavior = Pi_isa.Behavior
module Program = Pi_isa.Program
module Interp = Pi_isa.Interp
module Trace = Pi_isa.Trace
module Rng = Pi_stats.Rng

(* A bounded random statement-tree generator driven by a seed (we use our
   own RNG rather than QCheck generators so the shrunk counterexample is
   just an integer). *)
let rec random_stmts rng ~depth ~budget globals sites =
  if !budget <= 0 then [ B.work 1 ]
  else begin
    let n = 1 + Rng.int rng 4 in
    List.concat
      (List.init n (fun _ ->
           decr budget;
           match Rng.int rng (if depth > 0 then 9 else 4) with
           | 0 -> [ B.work (1 + Rng.int rng 6) ]
           | 1 -> [ B.fp_work (1 + Rng.int rng 3) ]
           | 2 ->
               let g = globals.(Rng.int rng (Array.length globals)) in
               [
                 (if Rng.bool rng then B.load_global g (B.seq ~stride:(8 * (1 + Rng.int rng 8)))
                  else B.load_global g B.rand_access);
               ]
           | 3 ->
               let s = sites.(Rng.int rng (Array.length sites)) in
               [ (if Rng.bool rng then B.load_heap s B.rand_access else B.store_heap s B.rand_access) ]
           | 4 | 5 ->
               let behavior =
                 match Rng.int rng 4 with
                 | 0 -> Behavior.Always_taken
                 | 1 -> Behavior.Bernoulli { p_taken = Rng.float rng 1.0 }
                 | 2 -> Behavior.Alternating
                 | _ ->
                     Behavior.Periodic
                       { pattern = Array.init (1 + Rng.int rng 6) (fun _ -> Rng.bool rng) }
               in
               [
                 B.if_ behavior
                   (random_stmts rng ~depth:(depth - 1) ~budget globals sites)
                   (random_stmts rng ~depth:(depth - 1) ~budget globals sites);
               ]
           | 6 ->
               [
                 B.for_ ~trips:(1 + Rng.int rng 6)
                   (random_stmts rng ~depth:(depth - 1) ~budget globals sites);
               ]
           | 7 ->
               [
                 B.while_ (Behavior.Bernoulli { p_taken = Rng.float rng 0.6 })
                   (random_stmts rng ~depth:(depth - 1) ~budget globals sites);
               ]
           | _ ->
               let cases =
                 Array.init (1 + Rng.int rng 3) (fun _ ->
                     random_stmts rng ~depth:(depth - 1) ~budget globals sites)
               in
               [ B.switch Behavior.Selector.Round_robin cases ]))
  end

let random_program seed =
  let rng = Rng.create seed in
  let b = B.create ~name:(Printf.sprintf "fuzz-%d" seed) in
  let n_objects = 1 + Rng.int rng 3 in
  let objs = Array.init n_objects (fun i -> B.add_object b (Printf.sprintf "o%d.o" i)) in
  let globals =
    Array.init (1 + Rng.int rng 3) (fun i ->
        B.global b ~name:(Printf.sprintf "g%d" i) ~size:(64 * (1 + Rng.int rng 64)))
  in
  let sites =
    Array.init (1 + Rng.int rng 2) (fun i ->
        B.heap_site b
          ~name:(Printf.sprintf "s%d" i)
          ~obj_size:(16 * (1 + Rng.int rng 16))
          ~count:(1 + Rng.int rng 64))
  in
  let budget = ref 30 in
  let leaves =
    Array.init (1 + Rng.int rng 4) (fun i ->
        B.proc b ~obj:objs.(i mod n_objects)
          ~name:(Printf.sprintf "leaf%d" i)
          (random_stmts rng ~depth:2 ~budget globals sites))
  in
  let body =
    random_stmts rng ~depth:2 ~budget globals sites
    @ Array.to_list (Array.map B.call leaves)
  in
  let main =
    B.proc b ~obj:objs.(0) ~name:"main" [ B.for_ ~trips:(2 + Rng.int rng 20) body ]
  in
  B.entry b main;
  B.finish b

let prop_fuzz_valid_and_runnable =
  QCheck.Test.make ~name:"random programs lower, validate, interpret, simulate" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let p = random_program seed in
      (* 1. The CFG is structurally valid. *)
      Result.is_ok (Program.validate p)
      &&
      (* 2. Interpretation is deterministic and bounded. *)
      let limits = { Interp.max_blocks = 5_000; stop_proc = None } in
      let t1 = Interp.run ~seed:1 ~limits p in
      let t2 = Interp.run ~seed:1 ~limits p in
      t1.Trace.block_seq = t2.Trace.block_seq
      && t1.Trace.instructions = t2.Trace.instructions
      &&
      (* 3. Any placement simulates cleanly with consistent instruction
            accounting. *)
      let placement = Pi_layout.Placement.make ~heap_random:(seed mod 2 = 0) p ~seed in
      let counts = Pi_uarch.Pipeline.run Pi_uarch.Machine.xeon_e5440 t1 placement in
      counts.Pi_uarch.Pipeline.instructions = t1.Trace.instructions
      && counts.Pi_uarch.Pipeline.cycles > 0.0)

let prop_fuzz_layout_invariance =
  QCheck.Test.make ~name:"random programs: instructions invariant across layouts" ~count:30
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let p = random_program seed in
      let limits = { Interp.max_blocks = 4_000; stop_proc = None } in
      let trace = Interp.run ~limits p in
      let run s =
        Pi_uarch.Pipeline.run Pi_uarch.Machine.xeon_e5440 trace
          (Pi_layout.Placement.make p ~seed:s)
      in
      let a = run 1 and b = run 2 in
      a.Pi_uarch.Pipeline.instructions = b.Pi_uarch.Pipeline.instructions
      && a.Pi_uarch.Pipeline.cond_branches = b.Pi_uarch.Pipeline.cond_branches)

(* ---- hostile JSON at the network boundary ------------------------- *)
(* Telemetry.parse guards the pi_serve submission endpoint: whatever a
   client sends, the parser must return Error — never raise, never
   overflow the stack, never go super-linear. *)

module J = Pi_campaign.Telemetry

let expect_error name input =
  match J.parse input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: hostile input parsed as Ok" name

let test_json_depth_limit () =
  (* 10k nested arrays: must be a clean Error, not a stack overflow. *)
  let deep = String.make 10_000 '[' ^ String.make 10_000 ']' in
  expect_error "deep arrays" deep;
  let deep_objs =
    String.concat "" (List.init 5_000 (fun _ -> "{\"k\":"))
    ^ "1"
    ^ String.make 5_000 '}'
  in
  expect_error "deep objects" deep_objs;
  (* A custom limit bites exactly where configured: max_depth levels are
     allowed, one more is not. *)
  (match J.parse ~max_depth:3 "[[[[1]]]]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth 4 nesting accepted under max_depth:3");
  match J.parse ~max_depth:3 "[[[1]]]" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 3 nesting rejected under max_depth:3: %s" msg

let test_json_size_limit () =
  let big = "\"" ^ String.make 256 'x' ^ "\"" in
  (match J.parse ~max_bytes:64 big with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "input beyond max_bytes accepted");
  (* Within the limit the same shape parses. *)
  match J.parse ~max_bytes:1024 big with
  | Ok (J.String _) -> ()
  | Ok _ -> Alcotest.fail "string parsed as non-string"
  | Error msg -> Alcotest.failf "in-budget input rejected: %s" msg

let test_json_duplicate_keys () =
  expect_error "duplicate key" {|{"a":1,"a":2}|};
  expect_error "nested duplicate key" {|{"outer":{"x":1,"x":1}}|};
  (* Same key at different depths is fine. *)
  match J.parse {|{"a":{"a":1}}|} with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "shadowed-but-legal key rejected: %s" msg

let test_json_truncated_and_garbage () =
  List.iter
    (fun s -> expect_error "malformed" s)
    [
      ""; "{"; "["; "{\"a\""; "{\"a\":}"; "[1,"; "\"unterminated"; "nul"; "tru";
      "01x"; "1e"; "{}trailing"; "\xff\xfe"; "{\"a\" 1}"; "[1 2]";
    ]

let prop_fuzz_json_never_raises =
  QCheck.Test.make ~name:"random bytes: Telemetry.parse returns, never raises"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match J.parse s with Ok _ | Error _ -> true)

let prop_fuzz_json_roundtrip =
  (* Rendered valid documents always re-parse: the daemon's own emissions
     can never be rejected by its own boundary. *)
  QCheck.Test.make ~name:"rendered json round-trips through the hardened parser"
    ~count:200
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let rec value depth =
        match Rng.int rng (if depth > 0 then 6 else 4) with
        | 0 -> J.Null
        | 1 -> J.Bool (Rng.bool rng)
        | 2 -> J.Int (Rng.int rng 1_000_000 - 500_000)
        | 3 -> J.String (Printf.sprintf "s%d" (Rng.int rng 1000))
        | 4 -> J.List (List.init (Rng.int rng 4) (fun _ -> value (depth - 1)))
        | _ ->
            J.Obj
              (List.init (Rng.int rng 4) (fun i ->
                   (Printf.sprintf "k%d" i, value (depth - 1))))
      in
      let doc = value 4 in
      match J.parse (J.to_string doc) with Ok _ -> true | Error _ -> false)

let suite =
  [
    ( "fuzz.programs",
      [
        QCheck_alcotest.to_alcotest prop_fuzz_valid_and_runnable;
        QCheck_alcotest.to_alcotest prop_fuzz_layout_invariance;
      ] );
    ( "fuzz.json",
      [
        Alcotest.test_case "nesting depth is bounded" `Quick test_json_depth_limit;
        Alcotest.test_case "input size is bounded" `Quick test_json_size_limit;
        Alcotest.test_case "duplicate keys are rejected" `Quick
          test_json_duplicate_keys;
        Alcotest.test_case "truncated and garbage inputs error" `Quick
          test_json_truncated_and_garbage;
        QCheck_alcotest.to_alcotest prop_fuzz_json_never_raises;
        QCheck_alcotest.to_alcotest prop_fuzz_json_roundtrip;
      ] );
  ]
