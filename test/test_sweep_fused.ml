(* Golden-equivalence tests for the fused sweep engine: Replay.run_many
   must reproduce the sequential per-config loop field-for-field
   (bit-identical cycles included) for every lane, across benchmarks x
   seeds x machines, with and without warmup — and lane sharding must be
   deterministic: any shard count, sequential or domain-parallel, yields
   the same study. *)

module Pipeline = Pi_uarch.Pipeline
module Replay = Pi_uarch.Replay
module Machine = Pi_uarch.Machine
module Sweep = Pi_uarch.Sweep
module Placement = Pi_layout.Placement

let check_counts label (a : Pipeline.counts) (b : Pipeline.counts) =
  let ck name got expect = Alcotest.(check int) (label ^ ": " ^ name) expect got in
  Alcotest.(check bool)
    (label ^ ": cycles bit-identical") true
    (a.Pipeline.cycles = b.Pipeline.cycles);
  ck "instructions" b.Pipeline.instructions a.Pipeline.instructions;
  ck "cond_branches" b.Pipeline.cond_branches a.Pipeline.cond_branches;
  ck "cond_mispredicts" b.Pipeline.cond_mispredicts a.Pipeline.cond_mispredicts;
  ck "indirect_branches" b.Pipeline.indirect_branches a.Pipeline.indirect_branches;
  ck "indirect_mispredicts" b.Pipeline.indirect_mispredicts a.Pipeline.indirect_mispredicts;
  ck "btb_misses" b.Pipeline.btb_misses a.Pipeline.btb_misses;
  ck "l1i_accesses" b.Pipeline.l1i_accesses a.Pipeline.l1i_accesses;
  ck "l1i_misses" b.Pipeline.l1i_misses a.Pipeline.l1i_misses;
  ck "l1d_accesses" b.Pipeline.l1d_accesses a.Pipeline.l1d_accesses;
  ck "l1d_misses" b.Pipeline.l1d_misses a.Pipeline.l1d_misses;
  ck "l2_accesses" b.Pipeline.l2_accesses a.Pipeline.l2_accesses;
  ck "l2_misses" b.Pipeline.l2_misses a.Pipeline.l2_misses

let traced name =
  let bench = Pi_workloads.Spec.find name in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  (p, Pi_layout.Run_limiter.trace p ~budget_blocks:8_000)

let machines =
  [ ("xeon_e5440", Machine.xeon_e5440); ("netburst", Machine.netburst_like) ]

let configs = Array.of_list (Sweep.configurations ())

(* The sequential reference for one lane: exactly Sweep's per-config path. *)
let sequential ~warmup_blocks base plan placement i =
  let name, make = configs.(i) in
  let config = Machine.with_predictor base ~name make in
  Replay.run ~warmup_blocks (Replay.with_config plan config) placement

let check_batch ~warmup_blocks label base plan placement =
  let batch = Replay.batch_of configs in
  let fused = Replay.run_many ~warmup_blocks plan batch placement in
  let src = Replay.batch_src batch in
  Array.iteri
    (fun j c ->
      let i = src.(j) in
      check_counts
        (Printf.sprintf "%s lane %s" label (fst configs.(i)))
        c
        (sequential ~warmup_blocks base plan placement i))
    fused

(* Every lane of the full 145-config grid, bit-exact, over 3 benches x 2
   seeds x 2 machines (the netburst machine exercises the trace cache and
   the higher penalty set; both machines run wrong-path effects, the state
   that forces per-lane L1I/L2 images). *)
let test_golden_matrix () =
  List.iter
    (fun bench_name ->
      let p, trace = traced bench_name in
      List.iter
        (fun (machine_name, base) ->
          let plan = Replay.compile base trace in
          List.iter
            (fun seed ->
              let placement = Placement.make p ~seed in
              let label = Printf.sprintf "%s/%s/seed%d" bench_name machine_name seed in
              check_batch ~warmup_blocks:0 label base plan placement)
            [ 1; 2 ])
        machines)
    [ "400.perlbench"; "429.mcf"; "445.gobmk" ]

let test_golden_with_warmup () =
  let p, trace = traced "403.gcc" in
  List.iter
    (fun (machine_name, base) ->
      let plan = Replay.compile base trace in
      let placement = Placement.make p ~seed:7 in
      check_batch ~warmup_blocks:1500 ("warmup/" ^ machine_name) base plan placement)
    machines

(* The batch partition: 143 of the 145 grid configurations carry kernels
   (bimodal/gshare/GAs/hybrid); the two static predictors fall back. Fused
   and fallback indices together cover the grid exactly once. *)
let test_batch_partition () =
  let batch = Replay.batch_of configs in
  Alcotest.(check int) "fused lanes" 143 (Replay.batch_lanes batch);
  let fallback = Replay.batch_fallback batch in
  let fallback_names =
    List.sort compare (Array.to_list (Array.map (fun i -> fst configs.(i)) fallback))
  in
  Alcotest.(check (list string))
    "fallback = static predictors"
    [ "static-not-taken"; "static-taken" ]
    fallback_names;
  let covered = Array.append (Replay.batch_src batch) fallback in
  Alcotest.(check (list int))
    "src + fallback cover the grid"
    (List.init (Array.length configs) (fun i -> i))
    (List.sort compare (Array.to_list covered));
  Alcotest.(check bool) "packed tables non-empty" true (Replay.batch_table_bytes batch > 0)

(* Sharding splits the lane set without loss or reorder of the merge: for
   several shard counts, the concatenated shard results equal the unsharded
   pass lane for lane. *)
let test_shard_partition () =
  let p, trace = traced "429.mcf" in
  let base = Machine.xeon_e5440 in
  let plan = Replay.compile base trace in
  let placement = Placement.make p ~seed:4 in
  let batch = Replay.batch_of configs in
  let whole = Replay.run_many plan batch placement in
  let src = Replay.batch_src batch in
  let by_caller = Array.make (Array.length configs) None in
  Array.iteri (fun j c -> by_caller.(src.(j)) <- Some c) whole;
  List.iter
    (fun shards ->
      let sub = Replay.shard batch ~shards in
      Alcotest.(check int)
        (Printf.sprintf "%d shards requested" shards)
        (min shards (Replay.batch_lanes batch))
        (Array.length sub);
      let seen = ref 0 in
      Array.iter
        (fun s ->
          let counts = Replay.run_many plan s placement in
          let ssrc = Replay.batch_src s in
          Array.iteri
            (fun j c ->
              incr seen;
              match by_caller.(ssrc.(j)) with
              | Some reference ->
                  check_counts
                    (Printf.sprintf "%d-way shard lane %s" shards (fst configs.(ssrc.(j))))
                    c reference
              | None -> Alcotest.fail "shard lane not in unsharded batch")
            counts)
        sub;
      Alcotest.(check int)
        (Printf.sprintf "%d-way sharding covers all lanes" shards)
        (Replay.batch_lanes batch) !seen)
    [ 2; 4; 7 ]

let check_studies_equal label (a : Sweep.study) (b : Sweep.study) =
  Alcotest.(check int)
    (label ^ ": point count") (Array.length b.Sweep.points) (Array.length a.Sweep.points);
  Array.iteri
    (fun i (pa : Sweep.point) ->
      let pb = b.Sweep.points.(i) in
      Alcotest.(check string) (label ^ ": name") pb.Sweep.config_name pa.Sweep.config_name;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s mpki+cpi bit-identical" label pa.Sweep.config_name)
        true
        (pa.Sweep.mpki = pb.Sweep.mpki && pa.Sweep.cpi = pb.Sweep.cpi))
    a.Sweep.points;
  Alcotest.(check bool)
    (label ^ ": perfect/ltage bit-identical") true
    (a.Sweep.perfect_cpi = b.Sweep.perfect_cpi
    && a.Sweep.ltage_point = b.Sweep.ltage_point
    && a.Sweep.predicted_perfect_cpi = b.Sweep.predicted_perfect_cpi
    && a.Sweep.predicted_ltage_cpi = b.Sweep.predicted_ltage_cpi)

(* The study-level contract: fused (any shard count, sequential or
   Scheduler-parallel) == per-config sequential loop, the `--jobs 1` ==
   `--jobs 4` determinism case included. *)
let test_study_fused_equals_sequential () =
  let p, trace = traced "400.perlbench" in
  let placement = Placement.make p ~seed:3 in
  let benchmark = "400.perlbench" in
  let baseline =
    Sweep.run_study ~warmup_blocks:500 ~fused:false ~benchmark trace placement
  in
  Alcotest.(check int) "baseline fallback lanes" 145 baseline.Sweep.fallback_lanes;
  let fused = Sweep.run_study ~warmup_blocks:500 ~benchmark trace placement in
  Alcotest.(check int) "fused lanes" 143 fused.Sweep.fused_lanes;
  Alcotest.(check int) "fallback lanes" 2 fused.Sweep.fallback_lanes;
  Alcotest.(check int) "warmup recorded" 500 fused.Sweep.warmup_blocks;
  check_studies_equal "fused==sequential" fused baseline;
  let sharded_seq =
    Sweep.run_study ~warmup_blocks:500 ~shards:4 ~benchmark trace placement
  in
  Alcotest.(check int) "4 shards recorded" 4 sharded_seq.Sweep.shards;
  check_studies_equal "shards=4 sequential" sharded_seq baseline;
  let jobs1 =
    Sweep.run_study ~warmup_blocks:500 ~shards:4
      ~map_shards:(Pi_campaign.Campaign.sweep_shard_map ~jobs:1 ())
      ~benchmark trace placement
  in
  let jobs4 =
    Sweep.run_study ~warmup_blocks:500 ~shards:4
      ~map_shards:(Pi_campaign.Campaign.sweep_shard_map ~jobs:4 ())
      ~benchmark trace placement
  in
  check_studies_equal "jobs=1" jobs1 baseline;
  check_studies_equal "jobs=4 == jobs=1" jobs4 jobs1

(* Satellite: the grid list is memoized — one shared list, not a rebuild
   per call. *)
let test_configurations_memoized () =
  Alcotest.(check bool)
    "configurations () returns the same list" true
    (Sweep.configurations () == Sweep.configurations ());
  Alcotest.(check int) "145 configurations" 145 (List.length (Sweep.configurations ()))

let suite =
  [
    ( "sweep_fused",
      [
        Alcotest.test_case "golden matrix: 145 lanes x 3 benches x 2 seeds x 2 machines" `Quick
          test_golden_matrix;
        Alcotest.test_case "golden with warmup" `Quick test_golden_with_warmup;
        Alcotest.test_case "batch partition: 143 fused + 2 fallback" `Quick test_batch_partition;
        Alcotest.test_case "shard partition and merge" `Quick test_shard_partition;
        Alcotest.test_case "study: fused == sequential, jobs 1 == jobs 4" `Quick
          test_study_fused_equals_sequential;
        Alcotest.test_case "configurations memoized" `Quick test_configurations_memoized;
      ] );
  ]
