(* Tests for the pi_obs observability layer: metric semantics (including
   lost-update-free parallel increments), histogram quantiles against the
   exact Pi_stats estimator, span nesting, and the two export formats —
   the Prometheus text scrape is parsed line by line and the Chrome trace
   with a small JSON parser, so a malformed export fails here before it
   fails in Perfetto. Metric names are unique per test: the registry is
   process-global and other suites bump the shared instruments. *)

module Metrics = Pi_obs.Metrics
module Span = Pi_obs.Span
module Log = Pi_obs.Log
module Clock = Pi_obs.Clock

(* ---------------- Counters, gauges, registration ---------------- *)

let test_counter_semantics () =
  let c = Metrics.counter "test_obs_counter_total" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 40;
  Alcotest.(check int) "inc and add accumulate" 42 (Metrics.counter_value c);
  (* Registration is idempotent: the same identity is the same instrument. *)
  let c' = Metrics.counter "test_obs_counter_total" in
  Metrics.inc c';
  Alcotest.(check int) "same identity, same cells" 43 (Metrics.counter_value c);
  (* Labels distinguish identities. *)
  let labelled = Metrics.counter ~labels:[ ("k", "v") ] "test_obs_counter_total" in
  Alcotest.(check int) "labelled twin is separate" 0 (Metrics.counter_value labelled)

let test_gauge_semantics () =
  let g = Metrics.gauge "test_obs_gauge" in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 7.5;
  Metrics.set g 3.25;
  Alcotest.(check (float 0.0)) "last write wins" 3.25 (Metrics.gauge_value g)

let test_kind_mismatch_raises () =
  let (_ : Metrics.counter) = Metrics.counter "test_obs_kind_clash" in
  match Metrics.gauge "test_obs_kind_clash" with
  | (_ : Metrics.gauge) -> Alcotest.fail "re-registering as a gauge should raise"
  | exception Invalid_argument _ -> ()

let test_parallel_increments_lossless () =
  (* The sharded design's whole point: concurrent increments from many
     domains lose nothing. 8 domains x 25k increments must sum exactly. *)
  let c = Metrics.counter "test_obs_parallel_total" in
  let h = Metrics.histogram ~buckets:[| 0.5; 1.5 |] "test_obs_parallel_seconds" in
  let per_domain = 25_000 in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.inc c;
              Metrics.observe h 1.0
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost counter updates" (8 * per_domain) (Metrics.counter_value c);
  let s = Metrics.snapshot h in
  Alcotest.(check int) "no lost observations" (8 * per_domain) s.Metrics.count;
  Alcotest.(check (float 1.0)) "float sum survives the CAS loop"
    (float_of_int (8 * per_domain))
    s.Metrics.sum;
  Alcotest.(check int) "all in the (0.5, 1.5] bucket" (8 * per_domain)
    s.Metrics.bucket_counts.(1)

(* ---------------- Histogram buckets and quantiles ---------------- *)

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test_obs_hist_seconds" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  let s = Metrics.snapshot h in
  Alcotest.(check int) "count" 5 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 106.0 s.Metrics.sum;
  (* Bounds are inclusive upper limits; the last slot is the +Inf overflow. *)
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1; 1 |] s.Metrics.bucket_counts

let test_quantile_matches_descriptive () =
  (* Against the exact order-statistic estimator on the same data: the
     histogram's answer may be off by at most one bucket width. *)
  let width = 0.5 in
  let buckets = Array.init 20 (fun i -> width *. float_of_int (i + 1)) in
  let h = Metrics.histogram ~buckets "test_obs_quantile_seconds" in
  let state = ref 123456789 in
  let values =
    Array.init 1000 (fun _ ->
        (* Deterministic LCG in [0, 10): no PRNG dependency, same data
           every run. *)
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        10.0 *. float_of_int !state /. float_of_int 0x40000000)
  in
  Array.iter (Metrics.observe h) values;
  let s = Metrics.snapshot h in
  List.iter
    (fun q ->
      let exact = Pi_stats.Descriptive.quantile values q in
      let binned = Metrics.quantile s q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within a bucket width (exact %.3f, binned %.3f)"
           (100.0 *. q) exact binned)
        true
        (Float.abs (binned -. exact) <= width))
    [ 0.1; 0.25; 0.5; 0.9; 0.99 ];
  Alcotest.(check bool) "empty histogram quantile is nan" true
    (Float.is_nan
       (Metrics.quantile
          (Metrics.snapshot (Metrics.histogram "test_obs_quantile_empty_seconds"))
          0.5))

(* ---------------- Spans ---------------- *)

let test_span_disabled_records_nothing () =
  Span.set_enabled false;
  Span.clear ();
  Alcotest.(check int) "disabled with_ returns the value" 9
    (Span.with_ ~name:"off" (fun () -> 9));
  Alcotest.(check int) "and records nothing" 0 (List.length (Span.events ()))

let test_span_nesting_and_ordering () =
  Span.set_enabled true;
  Span.clear ();
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.clear ())
    (fun () ->
      let value =
        Span.with_ ~name:"parent" ~args:[ ("k", "v") ] (fun () ->
            Span.with_ ~name:"child_a" (fun () -> ())
            |> fun () -> Span.with_ ~name:"child_b" (fun () -> 5))
      in
      Alcotest.(check int) "with_ is transparent" 5 value;
      (match Span.events () with
      | [ a; b; p ] ->
          Alcotest.(check string) "children complete first" "child_a" a.Span.name;
          Alcotest.(check string) "in order" "child_b" b.Span.name;
          Alcotest.(check string) "parent completes last" "parent" p.Span.name;
          Alcotest.(check int) "parent at depth 0" 0 p.Span.depth;
          Alcotest.(check int) "children at depth 1" 1 a.Span.depth;
          Alcotest.(check int) "same depth" 1 b.Span.depth;
          Alcotest.(check (list (pair string string))) "args kept" [ ("k", "v") ] p.Span.args;
          (* Temporal containment on the shared monotonic clock. *)
          let inside (c : Span.event) =
            c.Span.ts >= p.Span.ts && c.Span.ts +. c.Span.dur <= p.Span.ts +. p.Span.dur +. 1e-9
          in
          Alcotest.(check bool) "child_a inside parent" true (inside a);
          Alcotest.(check bool) "child_b inside parent" true (inside b);
          Alcotest.(check bool) "child_a before child_b" true (a.Span.ts <= b.Span.ts)
      | events -> Alcotest.failf "expected 3 spans, got %d" (List.length events));
      (* A raising body still records its span. *)
      (try Span.with_ ~name:"raises" (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite the exception" 4
        (List.length (Span.events ())))

(* ---------------- Prometheus exposition format ---------------- *)

let is_metric_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let test_prometheus_parses_line_by_line () =
  let c = Metrics.counter ~help:"lines test" ~labels:[ ("q", "a\"b") ] "test_obs_prom_total" in
  Metrics.add c 3;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test_obs_prom_seconds" in
  Metrics.observe h 1.5;
  Metrics.observe h 9.0;
  let text = Metrics.to_prometheus () in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "ends with a newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then
        Alcotest.(check bool)
          (Printf.sprintf "comment is HELP or TYPE: %s" line)
          true
          (String.length line > 7
          && (String.sub line 0 7 = "# HELP " || String.sub line 0 7 = "# TYPE "))
      else begin
        (* Sample line: name[{labels}] SP value — value must parse. *)
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "sample line without a value: %s" line
        | Some i ->
            let value = String.sub line (i + 1) (String.length line - i - 1) in
            (match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparsable value %S in: %s" value line);
            Alcotest.(check bool)
              (Printf.sprintf "metric name starts the line: %s" line)
              true
              (String.length line > 0 && is_metric_char line.[0])
      end)
    lines;
  (* The histogram exports cumulative buckets plus _sum/_count. *)
  let has s =
    List.exists
      (fun l -> String.length l >= String.length s && String.sub l 0 (String.length s) = s)
      lines
  in
  Alcotest.(check bool) "le=1 bucket" true (has "test_obs_prom_seconds_bucket{le=\"1\"} 0");
  Alcotest.(check bool) "le=2 bucket" true (has "test_obs_prom_seconds_bucket{le=\"2\"} 1");
  Alcotest.(check bool) "+Inf bucket is the total" true
    (has "test_obs_prom_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "_count" true (has "test_obs_prom_seconds_count 2");
  Alcotest.(check bool) "_sum" true (has "test_obs_prom_seconds_sum 10.5");
  Alcotest.(check bool) "label value escaped" true
    (has "test_obs_prom_total{q=\"a\\\"b\"} 3")

(* A strict exposition-format parser: every line of the scrape must
   match the grammar exactly (names, label escaping, float values), and
   every sample parsed back must agree with the registry it came from —
   so any exposition bug fails here, not in a real Prometheus server.
   Runs over EVERY registered metric, whichever suites ran first. *)

let strict_parse_exposition text =
  let fail fmt = Printf.ksprintf (fun msg -> Alcotest.fail msg) fmt in
  (* name ( "{" k="v" ("," k="v")* "}" )? " " value *)
  let parse_name line pos =
    let start = !pos in
    while !pos < String.length line && is_metric_char line.[!pos] do
      incr pos
    done;
    if !pos = start then fail "no metric name at %d in: %s" start line;
    String.sub line start (!pos - start)
  in
  let parse_label_value line pos =
    (* double-quoted, with backslash, quote and newline escapes *)
    if line.[!pos] <> '"' then fail "label value must open with a quote: %s" line;
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= String.length line then fail "unterminated label value: %s" line;
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          (if !pos + 1 >= String.length line then fail "dangling escape: %s" line);
          (match line.[!pos + 1] with
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | 'n' -> Buffer.add_char buf '\n'
          | c -> fail "invalid escape \\%c in: %s" c line);
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_sample line =
    let pos = ref 0 in
    let name = parse_name line pos in
    let labels =
      if !pos < String.length line && line.[!pos] = '{' then begin
        incr pos;
        let rec go acc =
          let k = parse_name line pos in
          if line.[!pos] <> '=' then fail "label without '=': %s" line;
          incr pos;
          let v = parse_label_value line pos in
          match line.[!pos] with
          | ',' ->
              incr pos;
              go ((k, v) :: acc)
          | '}' ->
              incr pos;
              List.rev ((k, v) :: acc)
          | c -> fail "unexpected %C after label in: %s" c line
        in
        go []
      end
      else []
    in
    if !pos >= String.length line || line.[!pos] <> ' ' then
      fail "sample needs a single space before the value: %s" line;
    incr pos;
    let value_str = String.sub line !pos (String.length line - !pos) in
    let value =
      match value_str with
      | "+Inf" -> Float.infinity
      | s -> (
          match float_of_string_opt s with
          | Some v -> v
          | None -> fail "unparsable sample value %S in: %s" s line)
    in
    (name, labels, value)
  in
  List.filter_map
    (fun line ->
      if line = "" then None
      else if line.[0] = '#' then begin
        (* Comments must be exactly "# HELP name text" / "# TYPE name t". *)
        (match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: name :: _ :: _ ->
            if not (String.for_all is_metric_char name) then
              fail "bad metric name in comment: %s" line
        | _ -> fail "malformed comment line: %s" line);
        None
      end
      else Some (parse_sample line))
    (String.split_on_char '\n' text)

let test_prometheus_conformance_roundtrip () =
  (* Ensure at least one of each kind with awkward label values exists. *)
  let c = Metrics.counter ~labels:[ ("path", "a\\b\"c\nd") ] "test_obs_conf_total" in
  Metrics.add c 7;
  let g = Metrics.gauge "test_obs_conf_ratio" in
  Metrics.set g 0.1234567890123;
  let h = Metrics.histogram ~buckets:[| 0.25; 0.5 |] "test_obs_conf_seconds" in
  Metrics.observe h 0.3;
  Metrics.observe h 99.0;
  let parsed = strict_parse_exposition (Metrics.to_prometheus ()) in
  let lookup name labels =
    match
      List.find_opt (fun (n, l, _) -> n = name && l = labels) parsed
    with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "scraped sample %s missing from exposition" name
  in
  (* Round-trip every registered metric, whatever other suites created. *)
  List.iter
    (fun (s : Metrics.sample) ->
      match s.Metrics.value with
      | Metrics.Counter n ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "counter %s round-trips" s.Metrics.name)
            (float_of_int n)
            (lookup s.Metrics.name s.Metrics.labels)
      | Metrics.Gauge v ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "gauge %s round-trips exactly" s.Metrics.name)
            v
            (lookup s.Metrics.name s.Metrics.labels)
      | Metrics.Histogram hs ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s_count round-trips" s.Metrics.name)
            (float_of_int hs.Metrics.count)
            (lookup (s.Metrics.name ^ "_count") s.Metrics.labels);
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s_sum round-trips" s.Metrics.name)
            hs.Metrics.sum
            (lookup (s.Metrics.name ^ "_sum") s.Metrics.labels);
          (* Buckets export cumulatively; +Inf equals _count. *)
          let cumulative = ref 0 in
          Array.iteri
            (fun i bound ->
              cumulative := !cumulative + hs.Metrics.bucket_counts.(i);
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s le=%g cumulative" s.Metrics.name bound)
                (float_of_int !cumulative)
                (lookup (s.Metrics.name ^ "_bucket")
                   (s.Metrics.labels @ [ ("le", Metrics.float_repr bound) ])))
            hs.Metrics.bounds;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s le=+Inf is the count" s.Metrics.name)
            (float_of_int hs.Metrics.count)
            (lookup (s.Metrics.name ^ "_bucket") (s.Metrics.labels @ [ ("le", "+Inf") ])))
    (Metrics.scrape ())

(* ---------------- Chrome trace JSON ---------------- *)

(* A deliberately strict micro JSON parser: accepts exactly the grammar,
   so an export bug (unescaped quote, trailing comma, bare nan) fails the
   test rather than some downstream viewer. *)
type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t' || s.[!pos] = '\r') do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\' | '/') as c) -> Buffer.add_char buf c; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c
                  when (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
                  ->
                    advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some c -> (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
      | None -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); JObj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, value) :: acc)
            | Some '}' -> advance (); JObj (List.rev ((key, value) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); JList [])
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (value :: acc)
            | Some ']' -> advance (); JList (List.rev (value :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '"' -> JStr (parse_string ())
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> JNum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  value

let test_chrome_trace_is_valid_json () =
  Span.set_enabled true;
  Span.clear ();
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.clear ())
    (fun () ->
      Span.with_ ~name:"outer" ~args:[ ("quote", "a\"b"); ("bench", "400.perlbench") ]
        (fun () -> Span.with_ ~name:"inner" (fun () -> ()));
      let doc = parse_json (Span.to_chrome_json ()) in
      (match doc with
      | JObj fields ->
          (match List.assoc_opt "displayTimeUnit" fields with
          | Some (JStr "ms") -> ()
          | _ -> Alcotest.fail "displayTimeUnit ms missing");
          (match List.assoc_opt "traceEvents" fields with
          | Some (JList events) ->
              Alcotest.(check int) "one event per span" 2 (List.length events);
              List.iter
                (fun event ->
                  match event with
                  | JObj e ->
                      List.iter
                        (fun key ->
                          if not (List.mem_assoc key e) then
                            Alcotest.failf "event missing %S" key)
                        [ "name"; "cat"; "ph"; "pid"; "tid"; "ts"; "dur"; "args" ];
                      (match List.assoc "ph" e with
                      | JStr "X" -> ()
                      | _ -> Alcotest.fail "complete events have ph X");
                      (match List.assoc "dur" e with
                      | JNum d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
                      | _ -> Alcotest.fail "dur not a number")
                  | _ -> Alcotest.fail "trace event is not an object")
                events
          | _ -> Alcotest.fail "traceEvents missing")
      | _ -> Alcotest.fail "top level is not an object");
      (* Completion order: the inner span finishes (and is listed) first. *)
      match doc with
      | JObj [ _; ("traceEvents", JList (JObj inner :: _)) ] ->
          Alcotest.(check string) "inner completes first" "inner"
            (match List.assoc "name" inner with JStr s -> s | _ -> "?")
      | _ -> Alcotest.fail "unexpected shape")

(* ---------------- Logging ---------------- *)

let test_log_levels_and_fields () =
  let captured = ref [] in
  Log.set_writer (Some (fun level line -> captured := (level, line) :: !captured));
  Fun.protect
    ~finally:(fun () ->
      Log.set_writer None;
      Log.set_level (Some Log.Warn))
    (fun () ->
      Log.set_level (Some Log.Warn);
      Log.info "not shown %d" 1;
      Log.warn ~fields:[ ("bench", "400.perlbench"); ("n", "8") ] "slow by %.1fx" 2.5;
      Log.error "broken";
      (match List.rev !captured with
      | [ (Log.Warn, warn_line); (Log.Error, error_line) ] ->
          Alcotest.(check string) "rendered with fields"
            "[pi:warn] slow by 2.5x (bench=400.perlbench, n=8)" warn_line;
          Alcotest.(check string) "error line" "[pi:error] broken" error_line
      | lines -> Alcotest.failf "expected 2 records, got %d" (List.length lines));
      (* Suppressed records still count in the metrics scrape. *)
      let level_counter l = Metrics.counter ~labels:[ ("level", l) ] "pi_obs_log_messages_total" in
      let before = Metrics.counter_value (level_counter "debug") in
      Log.set_level None;
      captured := [];
      Log.debug "invisible";
      Log.error "also invisible";
      Alcotest.(check (list (pair reject string))) "quiet shows nothing" [] !captured;
      Alcotest.(check int) "suppressed records are still counted" (before + 1)
        (Metrics.counter_value (level_counter "debug"));
      (* Debug level shows everything. *)
      Log.set_level (Some Log.Debug);
      Log.debug "now visible";
      Alcotest.(check int) "debug passes at debug level" 1 (List.length !captured))

let test_log_level_parsing () =
  Alcotest.(check bool) "warn parses" true (Log.level_of_string "warn" = Some (Some Log.Warn));
  Alcotest.(check bool) "quiet parses" true (Log.level_of_string "quiet" = Some None);
  Alcotest.(check bool) "garbage rejected" true (Log.level_of_string "loud" = None)

(* ---------------- Clock ---------------- *)

let test_clock_monotonic () =
  let t0 = Clock.now () in
  let samples = Array.init 1000 (fun _ -> Clock.now ()) in
  Array.iteri
    (fun i t ->
      let prev = if i = 0 then t0 else samples.(i - 1) in
      Alcotest.(check bool) "never goes backwards" true (t >= prev))
    samples;
  Alcotest.(check bool) "elapsed is nonnegative" true (Clock.elapsed t0 >= 0.0)

(* ---------------- Telemetry JSON rendering of a scrape ---------------- *)

let test_metrics_json_renders () =
  let c = Metrics.counter ~help:"json render" "test_obs_json_total" in
  Metrics.inc c;
  let doc =
    parse_json
      (Pi_campaign.Telemetry.to_string
         (Pi_campaign.Telemetry.metrics_json (Metrics.scrape ())))
  in
  match doc with
  | JObj [ ("metrics", JList samples) ] ->
      let ours =
        List.filter_map
          (fun sample ->
            match sample with
            | JObj fields when List.assoc_opt "name" fields = Some (JStr "test_obs_json_total")
              ->
                Some fields
            | _ -> None)
          samples
      in
      (match ours with
      | [ fields ] ->
          Alcotest.(check bool) "counter type" true
            (List.assoc_opt "type" fields = Some (JStr "counter"));
          Alcotest.(check bool) "value present" true
            (List.assoc_opt "value" fields = Some (JNum 1.0));
          Alcotest.(check bool) "help carried over" true
            (List.assoc_opt "help" fields = Some (JStr "json render"))
      | _ -> Alcotest.failf "expected exactly one sample, got %d" (List.length ours))
  | _ -> Alcotest.fail "metrics_json shape"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter: inc/add, idempotent registration" `Quick
          test_counter_semantics;
        Alcotest.test_case "gauge: last write wins" `Quick test_gauge_semantics;
        Alcotest.test_case "registry: kind mismatch raises" `Quick test_kind_mismatch_raises;
        Alcotest.test_case "parallel domains lose no updates" `Quick
          test_parallel_increments_lossless;
        Alcotest.test_case "histogram: bucket placement and sums" `Quick
          test_histogram_buckets;
        Alcotest.test_case "histogram: quantiles track Descriptive.quantile" `Quick
          test_quantile_matches_descriptive;
        Alcotest.test_case "span: disabled records nothing" `Quick
          test_span_disabled_records_nothing;
        Alcotest.test_case "span: nesting, ordering, containment" `Quick
          test_span_nesting_and_ordering;
        Alcotest.test_case "prometheus: output parses line by line" `Quick
          test_prometheus_parses_line_by_line;
        Alcotest.test_case "prometheus: strict-parser round-trip, every metric" `Quick
          test_prometheus_conformance_roundtrip;
        Alcotest.test_case "chrome trace: valid JSON with complete events" `Quick
          test_chrome_trace_is_valid_json;
        Alcotest.test_case "log: levels, fields, suppressed counting" `Quick
          test_log_levels_and_fields;
        Alcotest.test_case "log: PI_LOG value parsing" `Quick test_log_level_parsing;
        Alcotest.test_case "clock: monotonic and nonnegative" `Quick test_clock_monotonic;
        Alcotest.test_case "telemetry: metrics scrape renders as JSON" `Quick
          test_metrics_json_renders;
      ] );
  ]
