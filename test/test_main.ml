(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "interferometry"
    (Test_stats.suite @ Test_isa.suite @ Test_layout.suite @ Test_predictors.suite
   @ Test_uarch.suite @ Test_workloads.suite @ Test_replay.suite @ Test_sweep_fused.suite
   @ Test_cache_sweep.suite
   @ Test_pin.suite
   @ Test_core.suite
   @ Test_plot.suite @ Test_extensions.suite @ Test_characters.suite
   @ Test_analysis.suite @ Test_fuzz.suite @ Test_reproduction.suite @ Test_surrogate.suite
   @ Test_campaign.suite @ Test_resilience.suite @ Test_obs.suite
   @ Test_flight.suite
   @ Test_serve.suite @ Test_bundle.suite @ Test_distributed.suite)
