(* Tests for the pi_campaign subsystem: scheduler fan-out, --jobs plumbing,
   the parallel-equals-sequential determinism invariant, the on-disk
   observation cache, fault tolerance and the telemetry stream. Quick
   configurations and two benchmarks keep this fast. *)

module E = Interferometry.Experiment
module Campaign = Pi_campaign.Campaign
module Scheduler = Pi_campaign.Scheduler
module Obs_cache = Pi_campaign.Obs_cache
module Manifest = Pi_campaign.Manifest
module Telemetry = Pi_campaign.Telemetry
module Spec = Pi_workloads.Spec
module Bench = Pi_workloads.Bench

let quick = E.quick_config
let benches () = [ Spec.find "400.perlbench"; Spec.find "456.hmmer" ]

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let dataset_of (result : Campaign.result) name =
  match
    List.find_opt
      (fun (o : Campaign.bench_outcome) -> o.Campaign.bench.Bench.name = name)
      result.Campaign.outcomes
  with
  | Some { Campaign.dataset = Some d; _ } -> d
  | _ -> Alcotest.failf "no dataset for %s" name

(* ---------------- Scheduler ---------------- *)

let test_scheduler_order_independent () =
  let completions = Scheduler.map ~jobs:4 (fun i -> i * i) 40 in
  Alcotest.(check int) "all tasks" 40 (Array.length completions);
  Array.iteri
    (fun i (c : int Scheduler.completion) ->
      Alcotest.(check int) "slot matches index" i c.Scheduler.index;
      Alcotest.(check bool) "monotonic task window" true
        (c.Scheduler.finished >= c.Scheduler.started);
      Alcotest.(check (float 1e-6)) "elapsed is the window"
        (c.Scheduler.finished -. c.Scheduler.started)
        c.Scheduler.elapsed;
      match c.Scheduler.result with
      | Ok v -> Alcotest.(check int) "value in its own slot" (i * i) v
      | Error e -> Alcotest.failf "task %d failed: %s" i e.Scheduler.message)
    completions

let test_scheduler_failure_isolated () =
  let completions =
    Scheduler.map ~jobs:3 (fun i -> if i = 5 then failwith "boom" else i) 10
  in
  Array.iteri
    (fun i (c : int Scheduler.completion) ->
      match (i, c.Scheduler.result) with
      | 5, Error e ->
          Alcotest.(check bool) "error text recorded" true
            (String.length e.Scheduler.message > 0)
      | 5, Ok _ -> Alcotest.fail "task 5 should have failed"
      | _, Ok v -> Alcotest.(check int) "others unaffected" i v
      | _, Error e -> Alcotest.failf "task %d failed: %s" i e.Scheduler.message)
    completions

let test_scheduler_default_jobs () =
  Alcotest.(check bool) "at least one domain" true (Scheduler.default_jobs () >= 1)

(* ---------------- --jobs plumbing ---------------- *)

let test_jobs_plumbing () =
  (* The jobs knob must reach both the manifest and the scheduler; any
     worker count completes every (bench, seed) job exactly once. *)
  List.iter
    (fun jobs ->
      let r = Campaign.run ~config:quick ~jobs ~n_layouts:6 (benches ()) in
      let m = r.Campaign.manifest in
      Alcotest.(check int) "jobs recorded" jobs m.Manifest.jobs;
      Alcotest.(check int) "total jobs" 12 m.Manifest.total_jobs;
      Alcotest.(check int) "all computed" 12 m.Manifest.computed_jobs;
      Alcotest.(check int) "none failed" 0 m.Manifest.failed_jobs;
      Alcotest.(check int) "no cache, no probes" 0 m.Manifest.cache_misses;
      Alcotest.(check bool) "wall clock advanced" true (m.Manifest.wall_seconds > 0.0);
      List.iter
        (fun (b : Manifest.bench_entry) ->
          Alcotest.(check bool) "bench wall window positive" true (b.Manifest.wall_seconds > 0.0);
          Alcotest.(check bool) "bench cpu time positive" true (b.Manifest.cpu_seconds > 0.0);
          Alcotest.(check bool) "cpu is prepare + jobs" true
            (Float.abs
               (b.Manifest.cpu_seconds
               -. (b.Manifest.prepare_seconds +. b.Manifest.observe_seconds))
            < 1e-9))
        m.Manifest.benches;
      Alcotest.(check bool) "succeeded" true (Campaign.succeeded r);
      List.iter
        (fun b ->
          let d = dataset_of r b.Bench.name in
          Alcotest.(check int) "full dataset" 6 (Array.length d.E.observations))
        (benches ()))
    [ 1; 2; 5 ]

let test_determinism_parallel_vs_sequential () =
  (* The tentpole invariant: --jobs 4 and --jobs 1 produce bit-identical
     observation arrays (no RNG state is shared across domains). *)
  let sequential = Campaign.run ~config:quick ~jobs:1 ~n_layouts:8 (benches ()) in
  let parallel = Campaign.run ~config:quick ~jobs:4 ~n_layouts:8 (benches ()) in
  List.iter
    (fun b ->
      let ds = dataset_of sequential b.Bench.name
      and dp = dataset_of parallel b.Bench.name in
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " cpis identical") (E.cpis ds) (E.cpis dp);
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " mpkis identical") (E.mpkis ds) (E.mpkis dp);
      (* And identical to the plain sequential Experiment path. *)
      let direct = E.run ~config:quick b ~n_layouts:8 in
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " matches Experiment.run") (E.cpis direct) (E.cpis dp))
    (benches ())

(* ---------------- Observation cache ---------------- *)

let test_cache_hits_and_identity () =
  let dir = temp_dir "pi-campaign-cache" in
  let cold = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:8 (benches ()) in
  Alcotest.(check int) "cold run computes everything" 16
    cold.Campaign.manifest.Manifest.computed_jobs;
  Alcotest.(check int) "cold run probes all miss" 16
    cold.Campaign.manifest.Manifest.cache_misses;
  Alcotest.(check int) "cold run has no hits" 0 cold.Campaign.manifest.Manifest.cache_hits;
  let warm = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:8 (benches ()) in
  Alcotest.(check int) "warm run computes nothing" 0
    warm.Campaign.manifest.Manifest.computed_jobs;
  Alcotest.(check int) "warm run is all cache hits" 16
    warm.Campaign.manifest.Manifest.cached_jobs;
  Alcotest.(check int) "hit counter agrees" 16 warm.Campaign.manifest.Manifest.cache_hits;
  Alcotest.(check int) "no warm misses" 0 warm.Campaign.manifest.Manifest.cache_misses;
  (* extend-style growth: only the new seeds are computed. *)
  let grown = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:12 (benches ()) in
  Alcotest.(check int) "growth reuses the first 8 seeds" 16
    grown.Campaign.manifest.Manifest.cached_jobs;
  Alcotest.(check int) "growth computes only new seeds" 8
    grown.Campaign.manifest.Manifest.computed_jobs;
  (* Cached observations replay bit-identically (17-digit CSV round-trip). *)
  List.iter
    (fun b ->
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " cached == computed")
        (E.cpis (dataset_of cold b.Bench.name))
        (E.cpis (dataset_of warm b.Bench.name)))
    (benches ())

let test_cache_config_digest_rotates () =
  let base = Obs_cache.config_digest quick in
  Alcotest.(check bool) "digest is stable" true (base = Obs_cache.config_digest quick);
  let changed = Obs_cache.config_digest { quick with E.master_seed = 99 } in
  Alcotest.(check bool) "master seed rotates the digest" true (base <> changed);
  let heap = Obs_cache.config_digest { quick with E.heap_random = true } in
  Alcotest.(check bool) "heap mode rotates the digest" true (base <> heap)

let test_cache_entry_path_full_digest () =
  (* The addressing bugfix: entries file under the FULL config digest, so
     two configs can never truncate onto the same name. The legacy name is
     the 16-char prefix of the same digest. *)
  let cache = Obs_cache.create ~dir:(temp_dir "pi-cache-path") in
  let digest = Obs_cache.config_digest quick in
  let path = Obs_cache.entry_path cache ~bench:"456.hmmer" ~config:quick in
  Alcotest.(check string) "full-digest filename"
    (Printf.sprintf "456.hmmer.%s.csv" digest)
    (Filename.basename path);
  let legacy = Obs_cache.legacy_entry_path cache ~bench:"456.hmmer" ~config:quick in
  Alcotest.(check string) "legacy name is the truncated digest"
    (Printf.sprintf "456.hmmer.%s.csv" (String.sub digest 0 16))
    (Filename.basename legacy);
  Alcotest.(check bool) "names are distinct" true (path <> legacy)

let test_cache_legacy_entry_migrates () =
  (* A cache written by the truncated-digest version keeps serving: load
     falls back to the legacy name, and the next store rewrites the entry
     under its full name and retires the legacy file. *)
  let cache = Obs_cache.create ~dir:(temp_dir "pi-cache-legacy") in
  let bench = Spec.find "456.hmmer" in
  let prepared = E.prepare ~config:quick bench in
  let obs = [| E.observe_seed prepared 1; E.observe_seed prepared 2 |] in
  Obs_cache.store cache ~bench:"456.hmmer" ~config:quick obs;
  let full = Obs_cache.entry_path cache ~bench:"456.hmmer" ~config:quick in
  let legacy = Obs_cache.legacy_entry_path cache ~bench:"456.hmmer" ~config:quick in
  (* Forge the legacy layout: same rows, old truncated name only. *)
  Sys.rename full legacy;
  let loaded = Obs_cache.load cache ~bench:"456.hmmer" ~config:quick in
  Alcotest.(check int) "legacy entry read through fallback" 2 (Array.length loaded);
  Alcotest.(check int) "legacy rows keyed by seed" 1 loaded.(0).E.layout_seed;
  (* A store migrates: full name exists, legacy name is gone. *)
  Obs_cache.store cache ~bench:"456.hmmer" ~config:quick
    [| E.observe_seed prepared 3 |];
  Alcotest.(check bool) "full-digest file written" true (Sys.file_exists full);
  Alcotest.(check bool) "legacy file retired" false (Sys.file_exists legacy);
  Alcotest.(check int) "merge kept legacy rows" 3
    (Array.length (Obs_cache.load cache ~bench:"456.hmmer" ~config:quick));
  (* When both names exist the full-digest entry wins. *)
  Out_channel.with_open_bin legacy (fun oc ->
      Out_channel.output_string oc "stale,legacy,garbage\n");
  Alcotest.(check int) "full name shadows legacy" 3
    (Array.length (Obs_cache.load cache ~bench:"456.hmmer" ~config:quick))

let test_cache_corrupt_entry_is_loud_miss () =
  let cache = Obs_cache.create ~dir:(temp_dir "pi-cache-corrupt") in
  let counter = Pi_obs.Metrics.counter "pi_obs_obs_cache_corrupt_total" in
  let before = Pi_obs.Metrics.counter_value counter in
  let path = Obs_cache.entry_path cache ~bench:"456.hmmer" ~config:quick in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "layout_seed,not,a,real,header\nnope\n");
  let loaded = Obs_cache.load cache ~bench:"456.hmmer" ~config:quick in
  Alcotest.(check int) "corrupt entry reads as a miss" 0 (Array.length loaded);
  Alcotest.(check bool) "corruption is counted" true
    (Pi_obs.Metrics.counter_value counter > before)

(* ---------------- Fault tolerance ---------------- *)

let test_prepare_failure_is_partial () =
  let bomb =
    {
      Bench.name = "999.bomb";
      suite = Bench.Cpu2006;
      description = "always fails to build";
      expect_significant = false;
      build = (fun ~scale:_ -> failwith "kaboom");
    }
  in
  let r = Campaign.run ~config:quick ~jobs:2 ~n_layouts:5 [ Spec.find "456.hmmer"; bomb ] in
  Alcotest.(check bool) "partial failure reported" false (Campaign.succeeded r);
  Alcotest.(check int) "bomb's jobs all failed" 5 r.Campaign.manifest.Manifest.failed_jobs;
  Alcotest.(check int) "the healthy bench still completed" 5
    r.Campaign.manifest.Manifest.computed_jobs;
  let entry =
    List.find (fun (b : Manifest.bench_entry) -> b.Manifest.bench = "999.bomb")
      r.Campaign.manifest.Manifest.benches
  in
  (match entry.Manifest.prepare_error with
  | Some e ->
      Alcotest.(check bool) "error text recorded" true
        (String.length e > 0 && String.length (List.hd entry.Manifest.failures).Manifest.error > 0)
  | None -> Alcotest.fail "prepare_error missing");
  Alcotest.(check int) "healthy dataset intact" 5
    (Array.length (dataset_of r "456.hmmer").E.observations)

(* ---------------- Telemetry ---------------- *)

let test_telemetry_stream () =
  let path = Filename.temp_file "pi-events" ".jsonl" in
  let sink = Telemetry.to_file path in
  let r =
    Fun.protect
      ~finally:(fun () -> Telemetry.close sink)
      (fun () ->
        Campaign.run ~config:quick ~jobs:2 ~events:sink ~n_layouts:4
          [ Spec.find "456.hmmer" ])
  in
  Alcotest.(check bool) "campaign ok" true (Campaign.succeeded r);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  (* Every event line opens with {"event":"<name>", *)
  let count name =
    let prefix = Printf.sprintf {|{"event":"%s",|} name in
    List.length
      (List.filter
         (fun l ->
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
         lines)
  in
  Alcotest.(check bool) "has lines" true (List.length lines > 0);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check int) "one campaign_started" 1 (count "campaign_started");
  Alcotest.(check int) "one campaign_finished" 1 (count "campaign_finished");
  Alcotest.(check int) "a job_started per seed" 4 (count "job_started");
  Alcotest.(check int) "a job_finished per seed" 4 (count "job_finished")

let test_json_rendering () =
  let open Telemetry in
  Alcotest.(check string) "escaping"
    {|{"a":"x\"y\n","b":[1,true,null],"c":-2.5}|}
    (to_string
       (Obj
          [
            ("a", String "x\"y\n");
            ("b", List [ Int 1; Bool true; Null ]);
            ("c", Float (-2.5));
          ]))

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "scheduler: slots independent of interleaving" `Quick
          test_scheduler_order_independent;
        Alcotest.test_case "scheduler: one failure does not kill the rest" `Quick
          test_scheduler_failure_isolated;
        Alcotest.test_case "scheduler: sensible default jobs" `Quick
          test_scheduler_default_jobs;
        Alcotest.test_case "--jobs plumbing reaches scheduler and manifest" `Quick
          test_jobs_plumbing;
        Alcotest.test_case "parallel == sequential (bit-identical)" `Quick
          test_determinism_parallel_vs_sequential;
        Alcotest.test_case "cache: rerun hits, growth computes only new seeds" `Quick
          test_cache_hits_and_identity;
        Alcotest.test_case "cache: config digest stability and rotation" `Quick
          test_cache_config_digest_rotates;
        Alcotest.test_case "cache: entries use the full config digest" `Quick
          test_cache_entry_path_full_digest;
        Alcotest.test_case "cache: legacy truncated-digest entries migrate" `Quick
          test_cache_legacy_entry_migrates;
        Alcotest.test_case "cache: corrupt entry is a loud miss" `Quick
          test_cache_corrupt_entry_is_loud_miss;
        Alcotest.test_case "fault tolerance: prepare failure is partial" `Quick
          test_prepare_failure_is_partial;
        Alcotest.test_case "telemetry: JSONL event stream" `Quick test_telemetry_stream;
        Alcotest.test_case "telemetry: JSON rendering" `Quick test_json_rendering;
      ] );
  ]
