(* Tests for the flight recorder: Timeseries ring buffers (wraparound,
   two-tier downsampling determinism, JSON export), the History run
   ledger (digest framing, torn-tail truncation, skip-and-count on
   corrupt lines, self-healing append) and the regression comparator the
   `interferometry compare` sentinel is built on. Ledger files live in a
   fresh temp directory per test; Timeseries stores are local values, so
   nothing here leaks into the process-global metrics registry beyond
   the instruments pi_obs itself owns. *)

module Timeseries = Pi_obs.Timeseries
module History = Pi_obs.History
module Metrics = Pi_obs.Metrics

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pi_flight_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* ---------------- Timeseries: rings and downsampling ---------------- *)

let series_named snap name =
  match List.find_opt (fun s -> s.Timeseries.name = name) snap with
  | Some s -> s
  | None -> Alcotest.failf "no series %s in snapshot" name

let test_ring_wraparound () =
  let t = Timeseries.create ~capacity:4 ~downsample:2 () in
  for i = 1 to 10 do
    Timeseries.observe t ~ts:(float_of_int i) ~name:"flight_test_wrap" (float_of_int (i * 100))
  done;
  let s = series_named (Timeseries.snapshot t) "flight_test_wrap" in
  (* Raw tier: last [capacity] points, oldest first. *)
  Alcotest.(check (list (float 0.0)))
    "raw keeps the newest capacity points in order"
    [ 700.; 800.; 900.; 1000. ]
    (List.map (fun (p : Timeseries.point) -> p.Timeseries.value) s.Timeseries.points);
  Alcotest.(check (list (float 0.0)))
    "raw timestamps track the pushes" [ 7.; 8.; 9.; 10. ]
    (List.map (fun (p : Timeseries.point) -> p.Timeseries.ts) s.Timeseries.points);
  (* Coarse tier: pairs folded to their mean, stamped with the last
     contributing ts. 10 points make 5 coarse points; capacity 4 keeps
     the newest 4. *)
  Alcotest.(check (list (float 0.0)))
    "coarse points are pair means, newest four"
    [ 350.; 550.; 750.; 950. ]
    (List.map (fun (p : Timeseries.point) -> p.Timeseries.value) s.Timeseries.downsampled);
  Alcotest.(check (list (float 0.0)))
    "coarse ts is the last contributing point's" [ 4.; 6.; 8.; 10. ]
    (List.map (fun (p : Timeseries.point) -> p.Timeseries.ts) s.Timeseries.downsampled)

let test_downsampling_deterministic () =
  (* Folding the same points in the same order yields bit-identical
     tiers — the property that makes recorded series comparable. *)
  let mk () =
    let t = Timeseries.create ~capacity:8 ~downsample:4 () in
    for i = 1 to 50 do
      Timeseries.observe t ~ts:(float_of_int i *. 0.125) ~name:"flight_test_det"
        (Float.of_int i *. 1.0e-3 *. Float.of_int ((i * 7919) mod 101))
    done;
    series_named (Timeseries.snapshot t) "flight_test_det"
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "two identical fold sequences, identical snapshots" true (a = b);
  Alcotest.(check int) "coarse tier is 50/4 folds, ring-bounded" 8
    (List.length a.Timeseries.downsampled)

let test_histogram_flattening () =
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "flight_test_hist_seconds" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  let t = Timeseries.create ~capacity:4 ~downsample:2 () in
  Timeseries.record t ~ts:1.0 (Metrics.scrape ());
  let snap = Timeseries.snapshot t in
  let count = series_named snap "flight_test_hist_seconds_count" in
  let sum = series_named snap "flight_test_hist_seconds_sum" in
  (match count.Timeseries.points with
  | [ p ] -> Alcotest.(check (float 0.0)) "count series carries the count" 2.0 p.Timeseries.value
  | ps -> Alcotest.failf "expected 1 count point, got %d" (List.length ps));
  match sum.Timeseries.points with
  | [ p ] -> Alcotest.(check (float 0.0)) "sum series carries the sum" 2.0 p.Timeseries.value
  | ps -> Alcotest.failf "expected 1 sum point, got %d" (List.length ps)

let test_timeseries_json_parses () =
  let t = Timeseries.create ~capacity:4 ~downsample:2 () in
  Timeseries.observe t ~ts:1.0 ~name:"flight_test_json" ~labels:[ ("k", "v\"q") ] 42.0;
  Timeseries.observe t ~ts:2.0 ~name:"flight_test_json" ~labels:[ ("k", "v\"q") ] 43.0;
  let module J = Pi_campaign.Telemetry in
  match J.parse (Timeseries.to_json t) with
  | Error msg -> Alcotest.failf "to_json output does not parse: %s" msg
  | Ok (J.Obj fields) -> (
      (match List.assoc_opt "capacity" fields with
      | Some (J.Int 4) -> ()
      | _ -> Alcotest.fail "capacity field");
      match List.assoc_opt "series" fields with
      | Some (J.List (_ :: _ as series)) ->
          let found =
            List.exists
              (function
                | J.Obj sf -> (
                    match (List.assoc_opt "name" sf, List.assoc_opt "points" sf) with
                    | Some (J.String "flight_test_json"), Some (J.List [ _; _ ]) -> true
                    | _ -> false)
                | _ -> false)
              series
          in
          Alcotest.(check bool) "our series exported with both points" true found
      | _ -> Alcotest.fail "series list")
  | Ok _ -> Alcotest.fail "to_json output is not an object"

let test_sampler_collects () =
  let t = Timeseries.create ~capacity:32 ~downsample:4 () in
  let ticks = ref 0 in
  let stop = Timeseries.sampler ~interval:0.01 ~on_tick:(fun () -> incr ticks) t in
  Unix.sleepf 0.08;
  stop ();
  stop ();
  (* idempotent *)
  let snap = Timeseries.snapshot t in
  Alcotest.(check bool) "sampler scraped at least twice" true (!ticks >= 2);
  Alcotest.(check bool) "store holds series from the registry" true (snap <> []);
  let points_after_stop =
    List.fold_left (fun acc s -> acc + List.length s.Timeseries.points) 0 snap
  in
  Unix.sleepf 0.05;
  let points_later =
    List.fold_left
      (fun acc s -> acc + List.length s.Timeseries.points)
      0 (Timeseries.snapshot t)
  in
  Alcotest.(check int) "stop really stops the loop" points_after_stop points_later

(* ---------------- History: framing and ledger I/O ---------------- *)

let record ?(ts = 1000.0) ?(label = "quick") metrics =
  History.make ~ts ~kind:"campaign" ~label ~config_digest:"cafe0123" metrics

let test_history_frame_roundtrip () =
  let r = record [ ("obs_per_sec", 123.5); ("failed_jobs", 0.0); ("obs_per_sec", 999.0) ] in
  (* make dedups: first binding wins, sorted by name. *)
  Alcotest.(check (list (pair string (float 0.0))))
    "metrics sorted and deduped"
    [ ("failed_jobs", 0.0); ("obs_per_sec", 123.5) ]
    r.History.metrics;
  let line = History.frame (History.render r) in
  (match History.parse_record line with
  | Ok r' -> Alcotest.(check bool) "frame/parse round-trips the record" true (r = r')
  | Error msg -> Alcotest.failf "framed record does not parse: %s" msg);
  (* Any payload corruption flips the digest check. *)
  let corrupt = String.map (fun c -> if c = '5' then '6' else c) line in
  match History.parse_record corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted payload must not parse"

let test_history_append_read_torn_tail () =
  let dir = temp_dir () in
  let path = Filename.concat dir "history.jsonl" in
  History.append ~path (record ~ts:1.0 [ ("obs_per_sec", 10.0) ]);
  History.append ~path (record ~ts:2.0 [ ("obs_per_sec", 20.0) ]);
  History.append ~path (record ~ts:3.0 [ ("obs_per_sec", 30.0) ]);
  let replay = History.read ~path in
  Alcotest.(check int) "three clean records" 3 (List.length replay.History.records);
  Alcotest.(check int) "no invalid lines" 0 replay.History.invalid_lines;
  Alcotest.(check bool) "no torn tail" false replay.History.torn_tail;
  Alcotest.(check (list (float 0.0)))
    "records in file order" [ 1.0; 2.0; 3.0 ]
    (List.map (fun (r : History.record) -> r.History.ts) replay.History.records);
  (* Tear the tail: chop the last 10 bytes (newline included) as a crash
     mid-append would. The torn fragment is not misparsed. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 10);
  Unix.close fd;
  let torn = History.read ~path in
  Alcotest.(check int) "torn tail drops only the last record" 2
    (List.length torn.History.records);
  Alcotest.(check bool) "torn tail detected" true torn.History.torn_tail;
  Alcotest.(check int) "a torn tail is not an invalid line" 0 torn.History.invalid_lines;
  (* Appending self-heals: the new record starts on a fresh line; the
     fragment becomes one counted invalid line. *)
  History.append ~path (record ~ts:4.0 [ ("obs_per_sec", 40.0) ]);
  let healed = History.read ~path in
  Alcotest.(check (list (float 0.0)))
    "healed ledger keeps old records plus the new one" [ 1.0; 2.0; 4.0 ]
    (List.map (fun (r : History.record) -> r.History.ts) healed.History.records);
  Alcotest.(check int) "the fragment is now one invalid line" 1
    healed.History.invalid_lines;
  Alcotest.(check bool) "tail is whole again" false healed.History.torn_tail

let test_history_skips_corrupt_lines () =
  let dir = temp_dir () in
  let path = Filename.concat dir "history.jsonl" in
  History.append ~path (record ~ts:1.0 [ ("speedup", 2.0) ]);
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "this is not a framed record\n\n";
  close_out oc;
  History.append ~path (record ~ts:2.0 [ ("speedup", 3.0) ]);
  let replay = History.read ~path in
  Alcotest.(check (list (float 0.0)))
    "good records survive a corrupt middle" [ 1.0; 2.0 ]
    (List.map (fun (r : History.record) -> r.History.ts) replay.History.records);
  Alcotest.(check int) "one corrupt line counted (blank lines skip free)" 1
    replay.History.invalid_lines;
  (* A missing ledger reads as empty, not an error. *)
  let empty = History.read ~path:(Filename.concat dir "absent.jsonl") in
  Alcotest.(check int) "missing file is an empty ledger" 0
    (List.length empty.History.records)

(* ---------------- The regression comparator ---------------- *)

let test_compare_identical_clean () =
  let bag = [ ("obs_per_sec", 100.0); ("r_squared", 0.97); ("failed_jobs", 0.0) ] in
  let deltas = History.compare_metrics ~before:bag ~after:bag () in
  Alcotest.(check int) "every shared metric produces a delta" 3 (List.length deltas);
  Alcotest.(check int) "identical bags have no regressions" 0
    (List.length (History.regressions deltas))

let test_compare_flags_throughput_drop () =
  let before = [ ("obs_per_sec", 1000.0); ("r_squared", 0.99) ] in
  let after = [ ("obs_per_sec", 250.0); ("r_squared", 0.99) ] in
  let regs = History.regressions (History.compare_metrics ~before ~after ()) in
  (match regs with
  | [ d ] ->
      Alcotest.(check string) "the throughput metric regressed" "obs_per_sec"
        d.History.metric;
      Alcotest.(check (float 0.001)) "delta is -75%" (-75.0) d.History.delta_percent
  | ds -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length ds));
  (* A drop inside the 50% tolerance passes. *)
  let after_ok = [ ("obs_per_sec", 600.0); ("r_squared", 0.99) ] in
  Alcotest.(check int) "a 40% dip is noise, not regression" 0
    (List.length (History.regressions (History.compare_metrics ~before ~after:after_ok ())))

let test_compare_zero_throughput_skips () =
  (* A fully-cached campaign computes nothing: obs_per_sec 0 on either
     side means "didn't run", never a regression. *)
  let live = [ ("obs_per_sec", 40.0) ] and cached = [ ("obs_per_sec", 0.0) ] in
  Alcotest.(check int) "live -> cached is not a regression" 0
    (List.length (History.regressions (History.compare_metrics ~before:live ~after:cached ())));
  Alcotest.(check int) "cached -> live is not a regression" 0
    (List.length (History.regressions (History.compare_metrics ~before:cached ~after:live ())))

let test_compare_failed_jobs_and_ungated () =
  let before = [ ("failed_jobs", 0.0); ("wall_seconds", 10.0) ] in
  let after = [ ("failed_jobs", 1.0); ("wall_seconds", 500.0) ] in
  let regs = History.regressions (History.compare_metrics ~before ~after ()) in
  (match regs with
  | [ d ] ->
      Alcotest.(check string) "any new failure regresses" "failed_jobs" d.History.metric
  | ds -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length ds));
  (* wall_seconds matches no rule: informational only, 50x growth included. *)
  let wall =
    List.find
      (fun (d : History.delta) -> d.History.metric = "wall_seconds")
      (History.compare_metrics ~before ~after ())
  in
  Alcotest.(check bool) "ungated metrics never regress" false wall.History.regression;
  (* Metrics present on only one side are silently dropped. *)
  let deltas =
    History.compare_metrics ~before:[ ("only_before", 1.0) ] ~after:[ ("only_after", 1.0) ] ()
  in
  Alcotest.(check int) "disjoint bags share nothing" 0 (List.length deltas)

let test_compare_surrogate_error_rules () =
  (* Surrogate accuracy metrics gate lower-better on the _abs_err and
     _max_err suffixes with a 100% tolerance: errors live near zero, so
     only a doubling regresses. *)
  let before =
    [ ("surrogate_max_abs_err", 0.010); ("surrogate_predicted_cpi_max_err", 0.012) ]
  in
  (* Within 2x: jitter, not regression. *)
  let after_ok =
    [ ("surrogate_max_abs_err", 0.018); ("surrogate_predicted_cpi_max_err", 0.020) ]
  in
  Alcotest.(check int) "sub-doubling error growth is noise" 0
    (List.length
       (History.regressions (History.compare_metrics ~before ~after:after_ok ())));
  (* Past 2x: the model got meaningfully worse. *)
  let after_bad =
    [ ("surrogate_max_abs_err", 0.025); ("surrogate_predicted_cpi_max_err", 0.012) ]
  in
  (match History.regressions (History.compare_metrics ~before ~after:after_bad ()) with
  | [ d ] ->
      Alcotest.(check string) "the doubled error regressed" "surrogate_max_abs_err"
        d.History.metric;
      (match d.History.rule with
      | Some r ->
          Alcotest.(check bool) "gated by a lower-better rule" true
            (r.History.direction = History.Lower_better)
      | None -> Alcotest.fail "error metric matched no rule")
  | ds -> Alcotest.failf "expected exactly 1 regression, got %d" (List.length ds));
  (* Shrinking errors are improvements, never regressions. *)
  let after_better = [ ("surrogate_max_abs_err", 0.001) ] in
  Alcotest.(check int) "an error drop never regresses" 0
    (List.length
       (History.regressions (History.compare_metrics ~before ~after:after_better ())))

(* ---------------- Span buffer bound (flight-recorder memory) -------- *)

let test_span_buffer_cap_and_drop_counter () =
  let dropped = Metrics.counter "pi_obs_spans_dropped_total" in
  let was_enabled = Pi_obs.Span.enabled () in
  let old_cap = Pi_obs.Span.buffer_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Pi_obs.Span.set_enabled was_enabled;
      Pi_obs.Span.set_buffer_capacity old_cap;
      Pi_obs.Span.clear ())
    (fun () ->
      Pi_obs.Span.clear ();
      Pi_obs.Span.set_buffer_capacity 8;
      Pi_obs.Span.set_enabled true;
      let before_drops = Metrics.counter_value dropped in
      for i = 1 to 20 do
        Pi_obs.Span.with_ ~name:(Printf.sprintf "cap_test_%d" i) (fun () -> ())
      done;
      Alcotest.(check int) "buffer holds exactly its capacity" 8
        (List.length (Pi_obs.Span.events ()));
      Alcotest.(check int) "overflow spans are counted, not kept" 12
        (Metrics.counter_value dropped - before_drops);
      (* clear resets the buffer, making room again. *)
      Pi_obs.Span.clear ();
      Pi_obs.Span.with_ ~name:"after_clear" (fun () -> ());
      Alcotest.(check int) "clear frees capacity" 1
        (List.length (Pi_obs.Span.events ())))

let test_collector_cap_drops () =
  let dropped = Metrics.counter "pi_obs_spans_dropped_total" in
  let c = Pi_obs.Span.collector ~capacity:4 () in
  let before_drops = Metrics.counter_value dropped in
  Pi_obs.Span.with_collector c (fun () ->
      for i = 1 to 10 do
        Pi_obs.Span.with_ ~name:(Printf.sprintf "col_test_%d" i) (fun () -> ())
      done);
  Alcotest.(check int) "collector holds its capacity" 4
    (List.length (Pi_obs.Span.collector_events c));
  Alcotest.(check int) "collector overflow is counted" 6
    (Metrics.counter_value dropped - before_drops)

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "timeseries: ring wraparound, both tiers" `Quick
          test_ring_wraparound;
        Alcotest.test_case "timeseries: downsampling is deterministic" `Quick
          test_downsampling_deterministic;
        Alcotest.test_case "timeseries: histograms flatten to _count/_sum" `Quick
          test_histogram_flattening;
        Alcotest.test_case "timeseries: JSON export parses" `Quick
          test_timeseries_json_parses;
        Alcotest.test_case "timeseries: sampler scrapes and stops" `Quick
          test_sampler_collects;
        Alcotest.test_case "history: frame/parse round-trip, digest check" `Quick
          test_history_frame_roundtrip;
        Alcotest.test_case "history: append/read, torn tail heals" `Quick
          test_history_append_read_torn_tail;
        Alcotest.test_case "history: corrupt lines skipped and counted" `Quick
          test_history_skips_corrupt_lines;
        Alcotest.test_case "compare: identical bags are clean" `Quick
          test_compare_identical_clean;
        Alcotest.test_case "compare: throughput drop past tolerance" `Quick
          test_compare_flags_throughput_drop;
        Alcotest.test_case "compare: zero throughput means didn't-run" `Quick
          test_compare_zero_throughput_skips;
        Alcotest.test_case "compare: failed_jobs gates, ungated informational" `Quick
          test_compare_failed_jobs_and_ungated;
        Alcotest.test_case "compare: surrogate error suffixes gate lower-better" `Quick
          test_compare_surrogate_error_rules;
        Alcotest.test_case "span: global buffer cap drops and counts" `Quick
          test_span_buffer_cap_and_drop_counter;
        Alcotest.test_case "span: collector cap drops and counts" `Quick
          test_collector_cap_drops;
      ] );
  ]
