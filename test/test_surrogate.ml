(* The surrogate layer: exact recovery and round-trips on the pure
   Pi_stats.Surrogate pieces, determinism of the space-filling sampler,
   and the golden steering bounds — a surrogate-steered study must stay
   within 1% CPI of the full fused sweep on every predicted point, and a
   budget covering the whole grid must be bit-identical to the plain
   path. *)

module Surrogate = Pi_stats.Surrogate
module Sweep = Pi_uarch.Sweep
module Machine = Pi_uarch.Machine
module Placement = Pi_layout.Placement

let feps = 1e-9

(* ------------------------------------------------------------------ *)
(* Pure pieces. *)

let test_scaler_roundtrip () =
  let xs =
    [|
      [| 1.0; -3.0; 7.0; 4.0 |];
      [| 2.0; 5.0; 7.0; -1.0 |];
      [| 4.0; 0.5; 7.0; 0.0 |];
      [| -1.0; 2.0; 7.0; 12.0 |];
    |]
  in
  let s = Surrogate.scaler_fit xs in
  Array.iter
    (fun x ->
      let back = Surrogate.scaler_inverse s (Surrogate.scaler_transform s x) in
      Array.iteri
        (fun j v ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip col %d" j)
            true
            (Float.abs (back.(j) -. v) < 1e-9))
        x)
    xs;
  (* The constant column (index 2) standardizes to exactly 0 and inverts
     exactly. *)
  let z = Surrogate.scaler_transform s xs.(0) in
  Alcotest.(check (float feps)) "constant col -> 0" 0.0 z.(2);
  Alcotest.(check (float feps))
    "constant col back exactly" 7.0
    (Surrogate.scaler_inverse s z).(2)

let test_ridge_recovery () =
  (* Noise-free linear data: ridge with a tiny lambda must recover the
     generating coefficients almost exactly. *)
  let w_true = [| 2.0; -1.5; 0.25 |] and b_true = 4.0 in
  let xs =
    Array.init 40 (fun i ->
        let f = float_of_int i in
        [| sin f; cos (2.0 *. f); Float.rem f 5.0 |])
  in
  let ys =
    Array.map
      (fun x -> b_true +. (w_true.(0) *. x.(0)) +. (w_true.(1) *. x.(1)) +. (w_true.(2) *. x.(2)))
      xs
  in
  let r = Surrogate.ridge_fit ~lambda:1e-10 xs ys in
  Array.iteri
    (fun j w ->
      Alcotest.(check bool)
        (Printf.sprintf "weight %d" j)
        true
        (Float.abs (w -. w_true.(j)) < 1e-6))
    r.Surrogate.weights;
  Alcotest.(check bool) "bias" true (Float.abs (r.Surrogate.bias -. b_true) < 1e-6);
  Array.iter
    (fun x ->
      let y = b_true +. (w_true.(0) *. x.(0)) +. (w_true.(1) *. x.(1)) +. (w_true.(2) *. x.(2)) in
      Alcotest.(check bool) "predict" true (Float.abs (Surrogate.ridge_predict r x -. y) < 1e-6))
    xs

let test_ridge_condition_guard () =
  (* A perfectly collinear design is rank-deficient: the guard must
     escalate lambda instead of raising, and still fit the surface. *)
  let xs = Array.init 12 (fun i -> [| float_of_int i; 2.0 *. float_of_int i |]) in
  let ys = Array.map (fun x -> 1.0 +. x.(0) +. x.(1) |> fun v -> v) xs in
  let r = Surrogate.ridge_fit ~lambda:1e-12 xs ys in
  Alcotest.(check bool) "lambda escalated" true (r.Surrogate.lambda_used > 1e-12);
  (* Shrunk, not exact — but on the training manifold the fit must hold. *)
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "fit point %d" i)
        true
        (Float.abs (Surrogate.ridge_predict r x -. ys.(i)) < 0.15 *. (1.0 +. Float.abs ys.(i))))
    xs

let test_boost_reduces_residual () =
  (* A step function is invisible to ridge but trivial for stumps. *)
  let xs = Array.init 20 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun x -> if x.(0) < 10.0 then 1.0 else 5.0) xs in
  let stumps = Surrogate.boost_fit ~rounds:16 xs ys in
  Alcotest.(check bool) "learned something" true (Array.length stumps > 0);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "step point %d" i)
        true
        (Float.abs (Surrogate.boost_predict stumps x -. ys.(i)) < 0.5))
    xs

let test_fit_predict_uncertainty () =
  let xs = Array.init 30 (fun i -> [| float_of_int i /. 3.0; float_of_int (i mod 7) |]) in
  let ys = Array.map (fun x -> 3.0 +. (0.5 *. x.(0)) -. (0.2 *. x.(1))) xs in
  let t = Surrogate.fit xs ys in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "interpolation %d" i)
        true
        (Float.abs (Surrogate.predict t x -. ys.(i)) < 0.05))
    xs;
  Array.iter
    (fun x -> Alcotest.(check bool) "uncertainty nonneg" true (Surrogate.uncertainty t x >= 0.0))
    xs;
  Alcotest.(check bool) "oof p90 nonneg" true (Surrogate.oof_p90 t >= 0.0)

let test_sampling_determinism () =
  let feats =
    Array.map
      (fun (name, _) -> Surrogate.predictor_features name)
      (Array.of_list (Sweep.configurations ()))
  in
  let a = Surrogate.sample_order ~anchors:[ 3; 11 ] feats in
  let b = Surrogate.sample_order ~anchors:[ 3; 11 ] feats in
  Alcotest.(check (array int)) "same order run to run" a b;
  Alcotest.(check int) "anchor first" 3 a.(0);
  Alcotest.(check int) "anchor second" 11 a.(1);
  (* A permutation: every index exactly once. *)
  let seen = Array.make (Array.length feats) false in
  Array.iter (fun i -> seen.(i) <- true) a;
  Alcotest.(check bool) "permutation" true (Array.for_all Fun.id seen)

let test_predictor_features () =
  let f = Surrogate.predictor_features "gshare-14/10" in
  Alcotest.(check int) "dim" (Surrogate.predictor_feature_dim) (Array.length f);
  Alcotest.(check (float feps)) "gshare one-hot" 1.0 f.(1);
  Alcotest.(check (float feps)) "entries" 14.0 f.(6);
  Alcotest.(check (float feps)) "history" 10.0 f.(7);
  (* Every grid name parses; junk does not. *)
  List.iter
    (fun (name, _) -> ignore (Surrogate.predictor_features name))
    (Sweep.configurations ());
  Alcotest.check_raises "junk rejected"
    (Invalid_argument "Surrogate.predictor_features: \"ltage-9\" is not a sweep-grid name")
    (fun () -> ignore (Surrogate.predictor_features "ltage-9"))

(* ------------------------------------------------------------------ *)
(* Golden steering bounds. *)

let traced name =
  let bench = Pi_workloads.Spec.find name in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  (p, Pi_layout.Run_limiter.trace p ~budget_blocks:8_000)

let grid_n = List.length (Sweep.configurations ())

let test_steered_error_bound () =
  (* Hard benches may honestly refuse to certify anything and replay the
     whole grid — the bound must hold wherever the model DID prune, and
     across the matrix it must prune somewhere. *)
  let total_pruned = ref 0 in
  List.iter
    (fun bench_name ->
      let p, trace = traced bench_name in
      let plan = Pi_uarch.Replay.compile Machine.xeon_e5440 trace in
      List.iter
        (fun seed ->
          let placement = Placement.make p ~seed in
          let label = Printf.sprintf "%s/seed%d" bench_name seed in
          let full = Sweep.run_study ~plan ~benchmark:bench_name trace placement in
          let steered =
            Sweep.run_study ~plan ~surrogate:(Sweep.Max_err 1.0) ~benchmark:bench_name trace
              placement
          in
          total_pruned := !total_pruned + (grid_n - steered.Sweep.replayed_lanes);
          Array.iteri
            (fun i (p : Sweep.point) ->
              let f = full.Sweep.points.(i) in
              match steered.Sweep.sources.(i) with
              | Sweep.Replayed ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: replayed %s bit-identical" label p.Sweep.config_name)
                    true
                    (p.Sweep.cpi = f.Sweep.cpi && p.Sweep.mpki = f.Sweep.mpki)
              | Sweep.Predicted ->
                  let err = Float.abs (p.Sweep.cpi -. f.Sweep.cpi) /. f.Sweep.cpi *. 100.0 in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: %s CPI within 1%% (got %.3f%%)" label p.Sweep.config_name
                       err)
                    true (err <= 1.0))
            steered.Sweep.points)
        [ 1; 2 ])
    [ "400.perlbench"; "429.mcf"; "445.gobmk" ];
  Alcotest.(check bool) "pruned somewhere across the matrix" true (!total_pruned > 0)

let test_full_budget_identity () =
  let p, trace = traced "429.mcf" in
  let plan = Pi_uarch.Replay.compile Machine.xeon_e5440 trace in
  let placement = Placement.make p ~seed:1 in
  let plain = Sweep.run_study ~plan ~benchmark:"429.mcf" trace placement in
  let steered =
    Sweep.run_study ~plan ~surrogate:(Sweep.Budget grid_n) ~benchmark:"429.mcf" trace placement
  in
  Alcotest.(check bool) "points bit-identical" true (plain.Sweep.points = steered.Sweep.points);
  Alcotest.(check bool)
    "regression bit-identical" true
    (plain.Sweep.regression = steered.Sweep.regression);
  Alcotest.(check int) "all lanes replayed" grid_n steered.Sweep.replayed_lanes;
  Alcotest.(check bool)
    "all tagged replayed" true
    (Array.for_all (fun s -> s = Sweep.Replayed) steered.Sweep.sources)

let test_steered_cache_axis () =
  let p, trace = traced "429.mcf" in
  let plan = Pi_uarch.Replay.compile Machine.xeon_e5440 trace in
  let placement = Placement.make p ~seed:1 in
  let full = Sweep.run_cache_study ~plan ~benchmark:"429.mcf" trace placement in
  let steered =
    Sweep.run_cache_study ~plan ~surrogate:(Sweep.Max_err 1.0) ~benchmark:"429.mcf" trace
      placement
  in
  Alcotest.(check bool)
    "pruned something" true
    (steered.Sweep.cache_replayed_lanes < Array.length full.Sweep.cache_points);
  (* The seed machine's lane is anchored: always replayed truth. *)
  Alcotest.(check bool)
    "seed lane replayed" true
    (steered.Sweep.seed_point = full.Sweep.seed_point);
  Array.iteri
    (fun i (pt : Sweep.cache_point) ->
      let f = full.Sweep.cache_points.(i) in
      match steered.Sweep.cache_sources.(i) with
      | Sweep.Replayed ->
          Alcotest.(check bool)
            (pt.Sweep.geometry_name ^ " bit-identical") true
            (pt.Sweep.cache_cpi = f.Sweep.cache_cpi)
      | Sweep.Predicted ->
          let err =
            Float.abs (pt.Sweep.cache_cpi -. f.Sweep.cache_cpi) /. f.Sweep.cache_cpi *. 100.0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s CPI within 1%% (got %.3f%%)" pt.Sweep.geometry_name err)
            true (err <= 1.0))
    steered.Sweep.cache_points

let suite =
  [
    ( "surrogate",
      [
        Alcotest.test_case "scaler round trip" `Quick test_scaler_roundtrip;
        Alcotest.test_case "ridge exact recovery" `Quick test_ridge_recovery;
        Alcotest.test_case "ridge condition guard" `Quick test_ridge_condition_guard;
        Alcotest.test_case "boosted stumps fit a step" `Quick test_boost_reduces_residual;
        Alcotest.test_case "fit/predict/uncertainty" `Quick test_fit_predict_uncertainty;
        Alcotest.test_case "sampling order deterministic" `Quick test_sampling_determinism;
        Alcotest.test_case "predictor features" `Quick test_predictor_features;
        Alcotest.test_case "steered study: 1% CPI bound (3 benches x 2 seeds)" `Slow
          test_steered_error_bound;
        Alcotest.test_case "full budget == plain fused study" `Quick test_full_budget_identity;
        Alcotest.test_case "steered cache axis: 1% CPI bound" `Slow test_steered_cache_axis;
      ] );
  ]
