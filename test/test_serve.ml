(* pi_serve: WAL ledger crash semantics, the shared bounded queue, the
   HTTP layer, job identity, and an in-process daemon round trip.

   The crash tests enforce the ledger's contract directly on files: a torn
   tail (the half-written record a SIGKILL leaves) is detected, dropped and
   truncated; replay is idempotent; duplicate submit records (a client
   resubmitting after a crash-before-ack) collapse onto one job. *)

module J = Pi_campaign.Telemetry
module Ledger = Pi_serve.Ledger
module Http = Pi_serve.Http
module Router = Pi_serve.Router
module Jobs = Pi_serve.Jobs
module Server = Pi_serve.Server
module Client = Pi_serve.Client
module Queue = Pi_campaign.Scheduler.Queue

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pi_serve_test.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let record i = J.Obj [ ("record", J.String "submit"); ("n", J.Int i) ]

(* ---- ledger ------------------------------------------------------- *)

let test_ledger_roundtrip () =
  let path = Filename.concat (tmp_dir ()) "ledger.wal" in
  let ledger, replay = Ledger.open_ ~path in
  Alcotest.(check int) "fresh ledger is empty" 0 (List.length replay.Ledger.records);
  List.iter (fun i -> Ledger.append ledger (record i)) [ 1; 2; 3 ];
  Ledger.close ledger;
  let replay = Ledger.read ~path in
  Alcotest.(check int) "three records" 3 (List.length replay.Ledger.records);
  Alcotest.(check int) "no torn bytes" 0 replay.Ledger.torn_bytes;
  Alcotest.(check (list string)) "payloads survive verbatim"
    (List.map (fun i -> J.to_string (record i)) [ 1; 2; 3 ])
    (List.map J.to_string replay.Ledger.records)

let test_ledger_torn_tail () =
  let path = Filename.concat (tmp_dir ()) "ledger.wal" in
  let ledger, _ = Ledger.open_ ~path in
  List.iter (fun i -> Ledger.append ledger (record i)) [ 1; 2 ];
  Ledger.close ledger;
  let valid = (Ledger.read ~path).Ledger.valid_bytes in
  (* Simulate a SIGKILL mid-append: a record missing its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "0123456789abcdef0123456789abcdef {\"torn\":";
  close_out oc;
  let replay = Ledger.read ~path in
  Alcotest.(check int) "torn tail keeps the valid prefix" 2
    (List.length replay.Ledger.records);
  Alcotest.(check bool) "torn bytes detected" true (replay.Ledger.torn_bytes > 0);
  Alcotest.(check int) "valid prefix unchanged" valid replay.Ledger.valid_bytes;
  (* Reading is idempotent — same file, same answer. *)
  let again = Ledger.read ~path in
  Alcotest.(check int) "replay is idempotent" 2 (List.length again.Ledger.records);
  (* open_ self-heals: the tail is truncated and appends continue cleanly. *)
  let ledger, healed = Ledger.open_ ~path in
  Alcotest.(check int) "open_ reports the survivors" 2
    (List.length healed.Ledger.records);
  Ledger.append ledger (record 3);
  Ledger.close ledger;
  let final = Ledger.read ~path in
  Alcotest.(check int) "append after heal lands on a clean boundary" 3
    (List.length final.Ledger.records);
  Alcotest.(check int) "healed file has no torn bytes" 0 final.Ledger.torn_bytes

let test_ledger_corrupt_record_ends_prefix () =
  let path = Filename.concat (tmp_dir ()) "ledger.wal" in
  let ledger, _ = Ledger.open_ ~path in
  List.iter (fun i -> Ledger.append ledger (record i)) [ 1; 2; 3 ];
  Ledger.close ledger;
  (* Flip one payload byte of the second record: its digest now fails, so
     the valid prefix is record 1 only — records after a corrupt one are
     untrusted even if they look intact. *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let lines = String.split_on_char '\n' contents in
  let mangled =
    match lines with
    | a :: b :: rest ->
        let b = Bytes.of_string b in
        Bytes.set b (Bytes.length b - 2) '!';
        String.concat "\n" (a :: Bytes.to_string b :: rest)
    | _ -> Alcotest.fail "expected three ledger lines"
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc mangled);
  let replay = Ledger.read ~path in
  Alcotest.(check int) "corruption ends the valid prefix" 1
    (List.length replay.Ledger.records);
  Alcotest.(check bool) "rest counts as torn" true (replay.Ledger.torn_bytes > 0)

(* ---- the shared bounded queue ------------------------------------- *)

let test_queue_capacity_and_force () =
  let q = Queue.create ~capacity:2 () in
  Alcotest.(check bool) "accepts under capacity" true (Queue.enqueue q 1);
  Alcotest.(check bool) "accepts at capacity" true (Queue.enqueue q 2);
  Alcotest.(check bool) "rejects over capacity" false (Queue.enqueue q 3);
  Alcotest.(check bool) "force bypasses capacity" true (Queue.enqueue ~force:true q 4);
  Alcotest.(check int) "depth counts forced items" 3 (Queue.depth q);
  Queue.close q;
  Alcotest.(check bool) "closed queue rejects even forced" false
    (Queue.enqueue ~force:true q 5);
  Alcotest.(check (option int)) "drains after close" (Some 1) (Queue.dequeue q);
  Alcotest.(check (option int)) "drains in order" (Some 2) (Queue.dequeue q);
  Alcotest.(check (option int)) "forced item drains too" (Some 4) (Queue.dequeue q);
  Alcotest.(check (option int)) "then None" None (Queue.dequeue q)

let test_queue_fairness () =
  (* One greedy client, one light client: round-robin interleaves them
     rather than serving the greedy backlog first. *)
  let q = Queue.create () in
  List.iter (fun i -> ignore (Queue.enqueue ~client:"greedy" q i : bool)) [ 1; 2; 3 ];
  ignore (Queue.enqueue ~client:"light" q 100 : bool);
  Queue.close q;
  let order =
    List.init 4 (fun _ ->
        match Queue.dequeue q with Some i -> i | None -> Alcotest.fail "early None")
  in
  Alcotest.(check (list int)) "round-robin across clients" [ 1; 100; 2; 3 ] order

(* ---- http --------------------------------------------------------- *)

let with_request_bytes bytes f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let payload = Bytes.of_string bytes in
      ignore (Unix.write a payload 0 (Bytes.length payload) : int);
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      f b)

let test_http_parses_request () =
  with_request_bytes
    "POST /api/jobs?x=1 HTTP/1.1\r\nHost: h\r\nX-Client: ci\r\nContent-Length: 4\r\n\r\nbody"
    (fun fd ->
      match Http.read_request fd with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok req ->
          Alcotest.(check string) "method" "POST" req.Http.meth;
          Alcotest.(check string) "query stripped" "/api/jobs" req.Http.path;
          Alcotest.(check (option string)) "header lookup is case-insensitive"
            (Some "ci") (Http.header req "X-CLIENT");
          Alcotest.(check string) "body" "body" req.Http.body)

let test_http_rejects_hostile () =
  let cases =
    [
      ("no terminator", "GET /x HTTP/1.1\r\nHost: h\r\n");
      ("bad request line", "GET\r\n\r\n");
      ("bad content-length", "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
      ("relative target", "GET x HTTP/1.1\r\n\r\n");
    ]
  in
  List.iter
    (fun (name, bytes) ->
      with_request_bytes bytes (fun fd ->
          match Http.read_request fd with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "%s: accepted" name))
    cases;
  (* Over-limit header block errors out instead of buffering forever. *)
  with_request_bytes
    ("GET /x HTTP/1.1\r\nBig: " ^ String.make 4096 'a' ^ "\r\n\r\n")
    (fun fd ->
      match Http.read_request ~max_header_bytes:512 fd with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversized head accepted")

(* ---- router ------------------------------------------------------- *)

let test_router_dispatch () =
  let routes =
    [
      Router.get "/api/jobs" (fun _ _ -> Router.text 200 "list");
      Router.get "/api/jobs/:id" (fun params _ ->
          Router.text 200 ("job " ^ List.assoc "id" params));
      Router.post "/api/jobs" (fun _ _ -> Router.text 202 "submitted");
    ]
  in
  let req meth path = { Http.meth; path; headers = []; body = "" } in
  let resp, label = Router.dispatch routes (req "GET" "/api/jobs/j-123") in
  Alcotest.(check int) "param route hit" 200 resp.Http.code;
  Alcotest.(check string) "param bound" "job j-123" resp.Http.body;
  Alcotest.(check string) "metrics label is the pattern" "/api/jobs/:id" label;
  let resp, _ = Router.dispatch routes (req "POST" "/api/jobs") in
  Alcotest.(check int) "method picks the route" 202 resp.Http.code;
  let resp, _ = Router.dispatch routes (req "DELETE" "/api/jobs") in
  Alcotest.(check int) "wrong method is 405" 405 resp.Http.code;
  let resp, label = Router.dispatch routes (req "GET" "/nope") in
  Alcotest.(check int) "unknown path is 404" 404 resp.Http.code;
  Alcotest.(check string) "404 label is bounded" "*unmatched*" label

(* ---- job identity ------------------------------------------------- *)

let test_jobs_parse_and_key () =
  let parse s =
    match J.parse s with
    | Ok json -> Jobs.parse json
    | Error msg -> Alcotest.failf "test body unparsable: %s" msg
  in
  (match parse {|{"kind":"measure","bench":"429.mcf","layouts":5,"quick":true}|} with
  | Error msg -> Alcotest.failf "valid submission rejected: %s" msg
  | Ok p ->
      Alcotest.(check (list string)) "bench resolved" [ "429.mcf" ] p.Jobs.benches;
      (* Key is insensitive to bench order and resilient across parses. *)
      let p2 =
        match
          parse {|{"kind":"measure","benches":["429.mcf"],"layouts":5,"quick":true}|}
        with
        | Ok p2 -> p2
        | Error msg -> Alcotest.failf "equivalent submission rejected: %s" msg
      in
      Alcotest.(check string) "equal params, equal key" (Jobs.key p) (Jobs.key p2);
      Alcotest.(check string) "id derives from key" (Jobs.id_of_key (Jobs.key p))
        (Jobs.id_of_key (Jobs.key p2)));
  (match parse {|{"kind":"cache_sweep","bench":"429.mcf","quick":true}|} with
  | Error msg -> Alcotest.failf "cache_sweep submission rejected: %s" msg
  | Ok p -> Alcotest.(check string) "cache_sweep kind round-trips" "cache_sweep"
              (Jobs.kind_name p.Jobs.kind));
  (match parse {|{"kind":"bundle","dir":"/tmp/some-bundle"}|} with
  | Error msg -> Alcotest.failf "bundle submission rejected: %s" msg
  | Ok p ->
      Alcotest.(check string) "bundle kind round-trips" "bundle"
        (Jobs.kind_name p.Jobs.kind);
      Alcotest.(check string) "dir captured" "/tmp/some-bundle" p.Jobs.dir;
      Alcotest.(check (list string)) "bundle job names no benches" [] p.Jobs.benches);
  List.iter
    (fun body ->
      match parse body with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "hostile submission accepted: %s" body)
    [
      {|{"kind":"warp","bench":"429.mcf"}|};
      {|{"kind":"measure","bench":"no.such.bench"}|};
      {|{"kind":"measure","bench":"429.mcf","layouts":100000}|};
      {|{"kind":"measure","bench":"429.mcf","evil":1}|};
      {|{"kind":"predict","benches":["429.mcf","433.milc"]}|};
      {|{"kind":"cache_sweep","benches":["429.mcf","433.milc"]}|};
      {|{"kind":"measure"}|};
      {|[1,2,3]|};
      {|{"kind":"bundle"}|};
      {|{"kind":"bundle","dir":""}|};
      {|{"kind":"bundle","dir":"/tmp/b","bench":"429.mcf"}|};
      {|{"kind":"measure","bench":"429.mcf","dir":"/tmp/b"}|};
    ]

let test_jobs_execute_bundle () =
  (* A bundle job re-verifies a run bundle on disk; an unreadable or
     tampered bundle is an ok:false result document, never a job error. *)
  let module Bundle = Pi_campaign.Bundle in
  let state = tmp_dir () in
  let cache = Pi_campaign.Obs_cache.create ~dir:(Filename.concat state "cache") in
  let dir = Filename.concat state "bundle" in
  ignore
    (Bundle.write ~dir ~kind:"campaign" ~label:"t" ~config_digest:"d"
       ~config_args:[] ~benches:[ "429.mcf" ] ~n_layouts:4 ~workers:1
       ~created_at:0.0 ~metrics:[]
       ~inputs:[ ("config.json", "{}\n") ]
       ~outputs:[ ("429.mcf.csv", "seed,cpi\n1,1.0\n") ]
       ()
      : Bundle.manifest);
  let params body =
    match J.parse body with
    | Ok json -> (
        match Jobs.parse json with
        | Ok p -> p
        | Error msg -> Alcotest.failf "params: %s" msg)
    | Error msg -> Alcotest.failf "json: %s" msg
  in
  let field doc name =
    match doc with J.Obj fields -> List.assoc_opt name fields | _ -> None
  in
  let p = params (Printf.sprintf {|{"kind":"bundle","dir":%S}|} dir) in
  (match Jobs.execute ~cache p with
  | Error msg -> Alcotest.failf "bundle job failed: %s" msg
  | Ok doc ->
      Alcotest.(check bool) "pristine bundle verifies" true
        (field doc "ok" = Some (J.Bool true));
      (match field doc "problems" with
      | Some (J.List []) -> ()
      | _ -> Alcotest.fail "expected an empty problems list"));
  (* Tamper, resubmit: same job shape, ok flips. *)
  Out_channel.with_open_bin (Filename.concat dir "outputs/429.mcf.csv")
    (fun oc -> Out_channel.output_string oc "forged\n");
  (match Jobs.execute ~cache p with
  | Error msg -> Alcotest.failf "tampered bundle job failed: %s" msg
  | Ok doc ->
      Alcotest.(check bool) "tampered bundle fails verification" true
        (field doc "ok" = Some (J.Bool false)));
  (* No bundle at all: still a deterministic ok:false document. *)
  let missing = params {|{"kind":"bundle","dir":"/nonexistent/bundle"}|} in
  match Jobs.execute ~cache missing with
  | Error msg -> Alcotest.failf "missing bundle crashed the job: %s" msg
  | Ok doc ->
      Alcotest.(check bool) "missing bundle is ok:false" true
        (field doc "ok" = Some (J.Bool false));
      Alcotest.(check bool) "reason carried in error field" true
        (match field doc "error" with Some (J.String _) -> true | _ -> false)

let test_jobs_execute_estimate () =
  (* An estimate never replays: on an empty cache it is an ok:false
     document naming its measure twin; once the twin has run (filling the
     cache), re-executing the estimate reproduces the twin's fit
     bit-for-bit. *)
  let state = tmp_dir () in
  let cache = Pi_campaign.Obs_cache.create ~dir:(Filename.concat state "cache") in
  let parse body =
    match J.parse body with
    | Ok json -> (
        match Jobs.parse json with
        | Ok p -> p
        | Error msg -> Alcotest.failf "params: %s" msg)
    | Error msg -> Alcotest.failf "json: %s" msg
  in
  let field doc name =
    match doc with J.Obj fields -> List.assoc_opt name fields | _ -> None
  in
  let est = parse {|{"kind":"estimate","bench":"429.mcf","layouts":3,"quick":true}|} in
  let meas = parse {|{"kind":"measure","bench":"429.mcf","layouts":3,"quick":true}|} in
  Alcotest.(check bool) "estimate and twin have distinct keys" true
    (Jobs.key est <> Jobs.key meas);
  (match Jobs.execute ~cache est with
  | Error msg -> Alcotest.failf "cold estimate failed: %s" msg
  | Ok doc ->
      Alcotest.(check bool) "cold cache estimates ok:false" true
        (field doc "ok" = Some (J.Bool false));
      Alcotest.(check bool) "cold estimate names its twin" true
        (field doc "refined_job"
        = Some (J.String (Jobs.id_of_key (Jobs.key meas)))));
  let refined_fit =
    match Jobs.execute ~cache meas with
    | Error msg -> Alcotest.failf "measure twin failed: %s" msg
    | Ok doc -> (
        match field doc "benches" with
        | Some (J.List [ bench ]) -> (
            match bench with
            | J.Obj fields -> (
                match List.assoc_opt "fit" fields with
                | Some fit -> fit
                | None -> Alcotest.fail "measure doc carries no fit")
            | _ -> Alcotest.fail "malformed bench doc")
        | _ -> Alcotest.fail "measure doc carries no benches")
  in
  match Jobs.execute ~cache est with
  | Error msg -> Alcotest.failf "warm estimate failed: %s" msg
  | Ok doc ->
      Alcotest.(check bool) "warm cache estimates ok:true" true
        (field doc "ok" = Some (J.Bool true));
      Alcotest.(check bool) "fully cached estimate is not stale" true
        (field doc "stale" = Some (J.Bool false));
      (match field doc "fit" with
      | Some fit ->
          Alcotest.(check string) "estimate fit converges on the refined fit"
            (J.to_string refined_fit) (J.to_string fit)
      | None -> Alcotest.fail "warm estimate carries no fit")

(* ---- in-process daemon round trip --------------------------------- *)

let test_server_roundtrip () =
  let state_dir = tmp_dir () in
  let options = { (Server.default_options ~state_dir) with Server.workers = 1 } in
  let server = Server.start options in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "daemon not ready: %s" msg);
      let body = {|{"kind":"measure","bench":"429.mcf","layouts":4,"quick":true}|} in
      let id =
        match Client.submit ~client:"tests" conn ~body with
        | Error msg -> Alcotest.failf "submit failed: %s" msg
        | Ok (J.Obj fields) -> (
            match List.assoc_opt "id" fields with
            | Some (J.String id) -> id
            | _ -> Alcotest.fail "no id in acknowledgement")
        | Ok _ -> Alcotest.fail "malformed acknowledgement"
      in
      let result =
        match Client.wait_job ~timeout:120.0 conn ~id with
        | Ok doc -> doc
        | Error msg -> Alcotest.failf "job did not finish: %s" msg
      in
      (* Resubmission dedups onto the finished job and the result document
         is served from disk, byte-identical. *)
      (match Client.submit conn ~body with
      | Ok (J.Obj fields) ->
          Alcotest.(check bool) "duplicate flagged" true
            (List.assoc_opt "duplicate" fields = Some (J.Bool true))
      | Ok _ | Error _ -> Alcotest.fail "resubmission failed");
      (match Client.result conn ~id with
      | Ok again -> Alcotest.(check string) "result bytes are stable" result again
      | Error msg -> Alcotest.failf "result fetch failed: %s" msg);
      (* The ledger now carries submit + done; a restarted daemon must
         reconstruct the table without re-running anything. *)
      ());
  (* Restart on the same state: replay recognizes the persisted result. *)
  let server = Server.start options in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "restarted daemon not ready: %s" msg);
      match Http.request ~host:conn.Client.host ~port:conn.Client.port ~meth:"GET"
              ~path:"/api/jobs" ()
      with
      | Ok (200, body) ->
          Alcotest.(check bool) "replayed job is done" true
            (let contains s sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             contains body {|"status":"done"|})
      | Ok (code, _) -> Alcotest.failf "job list returned %d" code
      | Error msg -> Alcotest.failf "job list failed: %s" msg)

let test_server_estimate_refinement () =
  (* One estimate submission produces two jobs: the instant estimate and
     the background measure twin it names in "refined_job" — both finish,
     under distinct ids, with distinct documents. *)
  let state_dir = tmp_dir () in
  let options = { (Server.default_options ~state_dir) with Server.workers = 1 } in
  let server = Server.start options in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "daemon not ready: %s" msg);
      let body = {|{"kind":"estimate","bench":"429.mcf","layouts":3,"quick":true}|} in
      let id =
        match Client.submit ~client:"tests" conn ~body with
        | Error msg -> Alcotest.failf "submit failed: %s" msg
        | Ok (J.Obj fields) -> (
            match List.assoc_opt "id" fields with
            | Some (J.String id) -> id
            | _ -> Alcotest.fail "no id in acknowledgement")
        | Ok _ -> Alcotest.fail "malformed acknowledgement"
      in
      let doc =
        match Client.wait_job ~timeout:120.0 conn ~id with
        | Ok body -> (
            match J.parse body with
            | Ok doc -> doc
            | Error msg -> Alcotest.failf "estimate doc unparsable: %s" msg)
        | Error msg -> Alcotest.failf "estimate did not finish: %s" msg
      in
      let field name =
        match doc with J.Obj fields -> List.assoc_opt name fields | _ -> None
      in
      Alcotest.(check bool) "estimate doc has kind estimate" true
        (field "kind" = Some (J.String "estimate"));
      let refined_id =
        match field "refined_job" with
        | Some (J.String rid) -> rid
        | _ -> Alcotest.fail "estimate doc names no refined job"
      in
      Alcotest.(check bool) "twin runs under a distinct id" true (refined_id <> id);
      match Client.wait_job ~timeout:120.0 conn ~id:refined_id with
      | Error msg -> Alcotest.failf "background refinement did not finish: %s" msg
      | Ok body -> (
          match J.parse body with
          | Ok (J.Obj fields) ->
              Alcotest.(check bool) "refined doc is a measure document" true
                (List.assoc_opt "kind" fields = Some (J.String "measure"))
          | _ -> Alcotest.fail "refined doc unparsable"))

let test_server_replay_dedups_submits () =
  (* A crash between the WAL append and the client ack makes the client
     resubmit after restart; the identical params collapse onto one job.
     Forge that history: the same submit record appended twice. *)
  let state_dir = tmp_dir () in
  let params =
    match
      J.parse {|{"kind":"measure","bench":"429.mcf","layouts":4,"quick":true}|}
    with
    | Ok json -> (
        match Jobs.parse json with
        | Ok p -> p
        | Error msg -> Alcotest.failf "params: %s" msg)
    | Error msg -> Alcotest.failf "json: %s" msg
  in
  let submit_record =
    J.Obj
      [
        ("record", J.String "submit");
        ("key", J.String (Jobs.key params));
        ("client", J.String "anon");
        ("params", Jobs.canonical params);
      ]
  in
  let ledger, _ = Ledger.open_ ~path:(Filename.concat state_dir "ledger.wal") in
  Ledger.append ledger submit_record;
  Ledger.append ledger submit_record;
  Ledger.close ledger;
  let server = Server.start (Server.default_options ~state_dir) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "daemon not ready: %s" msg);
      let id = Jobs.id_of_key (Jobs.key params) in
      match Client.wait_job ~timeout:120.0 conn ~id with
      | Error msg -> Alcotest.failf "replayed job did not run: %s" msg
      | Ok _ -> (
          match Http.request ~host:conn.Client.host ~port:conn.Client.port
                  ~meth:"GET" ~path:"/stats" ()
          with
          | Ok (200, body) -> (
              match J.parse body with
              | Ok (J.Obj fields) -> (
                  match List.assoc_opt "jobs" fields with
                  | Some (J.Obj jobs) ->
                      Alcotest.(check bool) "exactly one job from two submits" true
                        (List.assoc_opt "done" jobs = Some (J.Int 1))
                  | _ -> Alcotest.fail "stats carries no jobs object")
              | _ -> Alcotest.fail "stats unparsable")
          | Ok (code, _) -> Alcotest.failf "stats returned %d" code
          | Error msg -> Alcotest.failf "stats failed: %s" msg))

let test_server_flight_recorder () =
  (* Forge a submit-only WAL (no done record): boot replay re-enqueues
     and actually executes the job, so its span trace is captured this
     boot — the restart-replay path the flight recorder must cover. *)
  let state_dir = tmp_dir () in
  let params =
    match
      J.parse {|{"kind":"measure","bench":"429.mcf","layouts":4,"quick":true}|}
    with
    | Ok json -> (
        match Jobs.parse json with
        | Ok p -> p
        | Error msg -> Alcotest.failf "params: %s" msg)
    | Error msg -> Alcotest.failf "json: %s" msg
  in
  let ledger, _ = Ledger.open_ ~path:(Filename.concat state_dir "ledger.wal") in
  Ledger.append ledger
    (J.Obj
       [
         ("record", J.String "submit");
         ("key", J.String (Jobs.key params));
         ("client", J.String "anon");
         ("params", Jobs.canonical params);
       ]);
  Ledger.close ledger;
  let id = Jobs.id_of_key (Jobs.key params) in
  let options =
    { (Server.default_options ~state_dir) with Server.scrape_interval = 0.05 }
  in
  let get conn path =
    Http.request ~host:conn.Client.host ~port:conn.Client.port ~meth:"GET" ~path ()
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let server = Server.start options in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "daemon not ready: %s" msg);
      (match Client.wait_job ~timeout:120.0 conn ~id with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "replayed job did not run: %s" msg);
      (* The job executed this boot, so its trace is retrievable and is
         valid Chrome trace-event JSON with the expected span skeleton. *)
      (match Client.trace conn ~id with
      | Error msg -> Alcotest.failf "trace fetch failed: %s" msg
      | Ok body ->
          (match J.parse body with
          | Ok (J.Obj fields) -> (
              match List.assoc_opt "traceEvents" fields with
              | Some (J.List (_ :: _)) -> ()
              | _ -> Alcotest.fail "trace has no events")
          | _ -> Alcotest.fail "trace is not a JSON object");
          List.iter
            (fun span ->
              Alcotest.(check bool) (span ^ " span present") true
                (contains body (Printf.sprintf "%S" span)))
            [ "job"; "job.queued"; "job.replay"; "job.fit" ]);
      (* Unknown job ids and present jobs are distinguishable. *)
      (match get conn "/api/jobs/j-000000000000/trace" with
      | Ok (404, body) ->
          Alcotest.(check bool) "unknown id says no job" true (contains body "no job")
      | Ok (code, _) -> Alcotest.failf "unknown trace returned %d" code
      | Error msg -> Alcotest.failf "unknown trace failed: %s" msg);
      (* The background sampler has been scraping all along. *)
      Unix.sleepf 0.15;
      match get conn "/api/timeseries" with
      | Ok (200, body) -> (
          match J.parse body with
          | Ok (J.Obj fields) -> (
              match List.assoc_opt "series" fields with
              | Some (J.List (_ :: _ as series)) ->
                  let has_points =
                    List.exists
                      (function
                        | J.Obj sf -> (
                            match List.assoc_opt "points" sf with
                            | Some (J.List (_ :: _ :: _)) -> true
                            | _ -> false)
                        | _ -> false)
                      series
                  in
                  Alcotest.(check bool) "some series has multiple points" true has_points
              | _ -> Alcotest.fail "timeseries carries no series")
          | _ -> Alcotest.fail "timeseries unparsable")
      | Ok (code, _) -> Alcotest.failf "timeseries returned %d" code
      | Error msg -> Alcotest.failf "timeseries failed: %s" msg);
  (* Restart: replay finds the persisted result, the job is done without
     executing, and the in-memory trace is gone — documented 404. *)
  let server = Server.start options in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = { Client.host = "127.0.0.1"; port = Server.port server } in
      (match Client.wait_ready conn with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "restarted daemon not ready: %s" msg);
      (match Client.status conn ~id with
      | Ok (J.Obj fields) ->
          Alcotest.(check bool) "job replayed as done" true
            (List.assoc_opt "status" fields = Some (J.String "done"))
      | Ok _ | Error _ -> Alcotest.fail "status after restart failed");
      match get conn (Printf.sprintf "/api/jobs/%s/trace" id) with
      | Ok (404, body) ->
          Alcotest.(check bool) "404 explains the trace is boot-local" true
            (contains body "not executed this boot")
      | Ok (code, _) -> Alcotest.failf "restart trace returned %d" code
      | Error msg -> Alcotest.failf "restart trace failed: %s" msg)

let suite =
  [
    ( "serve.ledger",
      [
        Alcotest.test_case "append/replay round trip" `Quick test_ledger_roundtrip;
        Alcotest.test_case "torn tail is dropped and healed" `Quick
          test_ledger_torn_tail;
        Alcotest.test_case "corruption ends the valid prefix" `Quick
          test_ledger_corrupt_record_ends_prefix;
      ] );
    ( "serve.queue",
      [
        Alcotest.test_case "capacity, force and close" `Quick
          test_queue_capacity_and_force;
        Alcotest.test_case "round-robin fairness" `Quick test_queue_fairness;
      ] );
    ( "serve.http",
      [
        Alcotest.test_case "parses a framed request" `Quick test_http_parses_request;
        Alcotest.test_case "rejects hostile requests" `Quick test_http_rejects_hostile;
      ] );
    ( "serve.router",
      [ Alcotest.test_case "dispatch, params, 404/405" `Quick test_router_dispatch ] );
    ( "serve.jobs",
      [
        Alcotest.test_case "parse, validate, canonical key" `Quick
          test_jobs_parse_and_key;
        Alcotest.test_case "bundle job verifies a bundle directory" `Quick
          test_jobs_execute_bundle;
        Alcotest.test_case "estimate job converges on its measure twin" `Quick
          test_jobs_execute_estimate;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "submit/wait/result + restart replay" `Quick
          test_server_roundtrip;
        Alcotest.test_case "estimate enqueues a background refinement" `Quick
          test_server_estimate_refinement;
        Alcotest.test_case "duplicate WAL submits collapse onto one job" `Quick
          test_server_replay_dedups_submits;
        Alcotest.test_case "flight recorder: timeseries + trace across restart" `Quick
          test_server_flight_recorder;
      ] );
  ]
