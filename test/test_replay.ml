(* Golden-equivalence tests for the compiled replay path: Replay.run must
   reproduce Pipeline.run_unoptimized field-for-field (bit-identical cycles
   included) over a matrix of benchmarks x seeds x machines, with and
   without warmup, and for every predictor family that has an inline
   kernel. *)

module Pipeline = Pi_uarch.Pipeline
module Replay = Pi_uarch.Replay
module Machine = Pi_uarch.Machine
module Placement = Pi_layout.Placement

let check_counts label (a : Pipeline.counts) (b : Pipeline.counts) =
  let ck name got expect = Alcotest.(check int) (label ^ ": " ^ name) expect got in
  Alcotest.(check bool)
    (label ^ ": cycles bit-identical") true
    (a.Pipeline.cycles = b.Pipeline.cycles);
  ck "instructions" b.Pipeline.instructions a.Pipeline.instructions;
  ck "cond_branches" b.Pipeline.cond_branches a.Pipeline.cond_branches;
  ck "cond_mispredicts" b.Pipeline.cond_mispredicts a.Pipeline.cond_mispredicts;
  ck "indirect_branches" b.Pipeline.indirect_branches a.Pipeline.indirect_branches;
  ck "indirect_mispredicts" b.Pipeline.indirect_mispredicts a.Pipeline.indirect_mispredicts;
  ck "btb_misses" b.Pipeline.btb_misses a.Pipeline.btb_misses;
  ck "l1i_accesses" b.Pipeline.l1i_accesses a.Pipeline.l1i_accesses;
  ck "l1i_misses" b.Pipeline.l1i_misses a.Pipeline.l1i_misses;
  ck "l1d_accesses" b.Pipeline.l1d_accesses a.Pipeline.l1d_accesses;
  ck "l1d_misses" b.Pipeline.l1d_misses a.Pipeline.l1d_misses;
  ck "l2_accesses" b.Pipeline.l2_accesses a.Pipeline.l2_accesses;
  ck "l2_misses" b.Pipeline.l2_misses a.Pipeline.l2_misses

let benches = [ "400.perlbench"; "403.gcc"; "429.mcf"; "445.gobmk" ]
let seeds = [ 1; 2; 3 ]

let machines =
  [
    ("xeon_e5440", Machine.xeon_e5440);
    (* The NetBurst-style machine exercises the trace cache; adding the
       data prefetcher also exerces prefetch fills on the replay path. *)
    ("netburst+prefetch", Machine.with_data_prefetcher Machine.netburst_like);
  ]

let traced name =
  let bench = Pi_workloads.Spec.find name in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  (p, Pi_layout.Run_limiter.trace p ~budget_blocks:8_000)

let test_golden_matrix () =
  List.iter
    (fun bench_name ->
      let p, trace = traced bench_name in
      List.iter
        (fun (machine_name, config) ->
          let plan = Replay.compile config trace in
          List.iter
            (fun seed ->
              let placement = Placement.make p ~seed in
              let label = Printf.sprintf "%s/%s/seed%d" bench_name machine_name seed in
              let legacy = Pipeline.run_unoptimized config trace placement in
              check_counts label (Replay.run plan placement) legacy)
            seeds)
        machines)
    benches

let test_golden_with_warmup () =
  let p, trace = traced "400.perlbench" in
  List.iter
    (fun (machine_name, config) ->
      let plan = Replay.compile config trace in
      let placement = Placement.make p ~seed:7 in
      let legacy = Pipeline.run_unoptimized ~warmup_blocks:1500 config trace placement in
      check_counts
        ("warmup/" ^ machine_name)
        (Replay.run ~warmup_blocks:1500 plan placement)
        legacy)
    machines

(* Pipeline.run is documented as compile-then-replay; keep it honest. *)
let test_run_is_replay () =
  let p, trace = traced "429.mcf" in
  let config = Machine.xeon_e5440 in
  let placement = Placement.make p ~seed:11 in
  check_counts "run = compile;replay"
    (Pipeline.run config trace placement)
    (Replay.run (Replay.compile config trace) placement)

(* Every predictor family with an inline kernel (bimodal, gshare, GAs,
   hybrid) plus a kernel-less predictor (perceptron, closure fallback):
   replay must match the closure-driven legacy path on live state. *)
let test_kernel_families () =
  let p, trace = traced "445.gobmk" in
  let families =
    [
      ("bimodal", fun () -> Pi_uarch.Bimodal.create ~entries_log2:12);
      ("gshare", fun () -> Pi_uarch.Gshare.create ~entries_log2:12 ~history_bits:8);
      ("gas", fun () -> Pi_uarch.Gas.create ~entries_log2:12 ~history_bits:6);
      ("hybrid", Pi_uarch.Hybrid.xeon_like);
      ("perceptron (no kernel)", fun () -> Pi_uarch.Perceptron.create ~history_bits:12 ());
    ]
  in
  List.iter
    (fun (name, make_predictor) ->
      let config = { Machine.xeon_e5440 with Pipeline.make_predictor } in
      let plan = Replay.compile config trace in
      List.iter
        (fun seed ->
          let placement = Placement.make p ~seed in
          let label = Printf.sprintf "kernel %s seed%d" name seed in
          check_counts label
            (Replay.run plan placement)
            (Pipeline.run_unoptimized config trace placement))
        [ 2; 5 ])
    families

(* with_config must be equivalent to a fresh compile whether it reuses the
   packed arrays (predictor-only change) or recompiles (cost change). *)
let test_with_config () =
  let p, trace = traced "400.perlbench" in
  let base = Machine.xeon_e5440 in
  let plan = Replay.compile base trace in
  let placement = Placement.make p ~seed:3 in
  let variants =
    [
      ( "predictor swap (reuses arrays)",
        { base with Pipeline.make_predictor = (fun () -> Pi_uarch.Bimodal.create ~entries_log2:10) } );
      ( "penalty change (recompiles)",
        { base with Pipeline.penalties = { base.Pipeline.penalties with Pipeline.l2_miss = 300.0 } } );
    ]
  in
  List.iter
    (fun (label, config) ->
      check_counts label
        (Replay.run (Replay.with_config plan config) placement)
        (Pipeline.run_unoptimized config trace placement))
    variants

let test_plan_introspection () =
  let _, trace = traced "429.mcf" in
  let plan = Replay.compile Machine.xeon_e5440 trace in
  Alcotest.(check int) "plan blocks = trace blocks"
    (Pi_isa.Trace.blocks_executed trace) (Replay.blocks plan);
  Alcotest.(check bool) "plan has mem events" true (Replay.mem_events plan > 0);
  Alcotest.(check bool) "plan words accounted" true (Replay.words plan > 0)

let suite =
  [
    ( "replay",
      [
        Alcotest.test_case "golden matrix: 4 benches x 3 seeds x 2 machines" `Quick
          test_golden_matrix;
        Alcotest.test_case "golden with warmup" `Quick test_golden_with_warmup;
        Alcotest.test_case "run = compile;replay" `Quick test_run_is_replay;
        Alcotest.test_case "predictor kernels match closures" `Quick test_kernel_families;
        Alcotest.test_case "with_config reuse and recompile" `Quick test_with_config;
        Alcotest.test_case "plan introspection" `Quick test_plan_introspection;
      ] );
  ]
