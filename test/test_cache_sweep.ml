(* Golden-equivalence tests for the cache axis of the fused sweep engine:
   Replay.run_many over a cache batch must reproduce the sequential
   per-geometry loop field-for-field (bit-identical cycles included) for
   every lane, across benchmarks x seeds x machines, with and without
   warmup — and lane sharding must be deterministic: any shard count,
   sequential or domain-parallel, yields the same study. Also covers the
   satellite Cache.create geometry validation and the batch's duplicate /
   line-size rejections. *)

module Pipeline = Pi_uarch.Pipeline
module Replay = Pi_uarch.Replay
module Machine = Pi_uarch.Machine
module Sweep = Pi_uarch.Sweep
module Cache = Pi_uarch.Cache
module Placement = Pi_layout.Placement

let check_counts label (a : Pipeline.counts) (b : Pipeline.counts) =
  let ck name got expect = Alcotest.(check int) (label ^ ": " ^ name) expect got in
  Alcotest.(check bool)
    (label ^ ": cycles bit-identical") true
    (a.Pipeline.cycles = b.Pipeline.cycles);
  ck "instructions" b.Pipeline.instructions a.Pipeline.instructions;
  ck "cond_branches" b.Pipeline.cond_branches a.Pipeline.cond_branches;
  ck "cond_mispredicts" b.Pipeline.cond_mispredicts a.Pipeline.cond_mispredicts;
  ck "indirect_branches" b.Pipeline.indirect_branches a.Pipeline.indirect_branches;
  ck "indirect_mispredicts" b.Pipeline.indirect_mispredicts a.Pipeline.indirect_mispredicts;
  ck "btb_misses" b.Pipeline.btb_misses a.Pipeline.btb_misses;
  ck "l1i_accesses" b.Pipeline.l1i_accesses a.Pipeline.l1i_accesses;
  ck "l1i_misses" b.Pipeline.l1i_misses a.Pipeline.l1i_misses;
  ck "l1d_accesses" b.Pipeline.l1d_accesses a.Pipeline.l1d_accesses;
  ck "l1d_misses" b.Pipeline.l1d_misses a.Pipeline.l1d_misses;
  ck "l2_accesses" b.Pipeline.l2_accesses a.Pipeline.l2_accesses;
  ck "l2_misses" b.Pipeline.l2_misses a.Pipeline.l2_misses

let traced name =
  let bench = Pi_workloads.Spec.find name in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  (p, Pi_layout.Run_limiter.trace p ~budget_blocks:8_000)

let machines =
  [ ("xeon_e5440", Machine.xeon_e5440); ("netburst", Machine.netburst_like) ]

let geometries (base : Pipeline.config) =
  Array.of_list
    (List.map
       (fun (name, vi, vd) ->
         ( name,
           Sweep.apply_cache_variant base.Pipeline.l1i vi,
           Sweep.apply_cache_variant base.Pipeline.l2 vd ))
       (Sweep.cache_configurations ()))

(* The sequential reference for one lane: exactly Sweep's per-geometry
   path — the seed machine rebound to the lane's L1I/L2. *)
let sequential ~warmup_blocks (base : Pipeline.config) plan placement (_, gi, gd) =
  let config = { base with Pipeline.l1i = gi; l2 = gd } in
  Replay.run ~warmup_blocks (Replay.with_config plan config) placement

let check_batch ~warmup_blocks label (base : Pipeline.config) plan placement =
  let configs = geometries base in
  let batch = Replay.cache_batch_of ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2 configs in
  Alcotest.(check string) (label ^ ": axis") "cache" (Replay.batch_axis batch);
  let fused = Replay.run_many ~warmup_blocks plan batch placement in
  let src = Replay.batch_src batch in
  Array.iteri
    (fun j c ->
      let i = src.(j) in
      let ((name, _, _) as cfg) = configs.(i) in
      check_counts
        (Printf.sprintf "%s lane %s" label name)
        c
        (sequential ~warmup_blocks base plan placement cfg))
    fused

(* Every lane of the full 100-geometry grid, bit-exact, over 3 benches x 2
   seeds x 2 machines (the netburst machine exercises the trace cache and
   the higher penalty set; both machines run wrong-path effects, whose L1I
   probe/touch and speculative L2 touches hit the per-lane tag images). *)
let test_golden_matrix () =
  List.iter
    (fun bench_name ->
      let p, trace = traced bench_name in
      List.iter
        (fun (machine_name, base) ->
          let plan = Replay.compile base trace in
          List.iter
            (fun seed ->
              let placement = Placement.make p ~seed in
              let label = Printf.sprintf "%s/%s/seed%d" bench_name machine_name seed in
              check_batch ~warmup_blocks:0 label base plan placement)
            [ 1; 2 ])
        machines)
    [ "400.perlbench"; "429.mcf"; "445.gobmk" ]

let test_golden_with_warmup () =
  let p, trace = traced "403.gcc" in
  List.iter
    (fun (machine_name, base) ->
      let plan = Replay.compile base trace in
      let placement = Placement.make p ~seed:7 in
      check_batch ~warmup_blocks:1500 ("warmup/" ^ machine_name) base plan placement)
    machines

(* Sharding splits the lane set without loss or reorder of the merge: for
   several shard counts, the concatenated shard results equal the unsharded
   pass lane for lane. *)
let test_shard_partition () =
  let p, trace = traced "429.mcf" in
  let base = Machine.xeon_e5440 in
  let plan = Replay.compile base trace in
  let placement = Placement.make p ~seed:4 in
  let configs = geometries base in
  let batch = Replay.cache_batch_of ~l1i:base.Pipeline.l1i ~l2:base.Pipeline.l2 configs in
  let whole = Replay.run_many plan batch placement in
  let src = Replay.batch_src batch in
  let by_caller = Array.make (Array.length configs) None in
  Array.iteri (fun j c -> by_caller.(src.(j)) <- Some c) whole;
  List.iter
    (fun shards ->
      let sub = Replay.shard batch ~shards in
      Alcotest.(check int)
        (Printf.sprintf "%d shards requested" shards)
        (min shards (Replay.batch_lanes batch))
        (Array.length sub);
      let seen = ref 0 in
      Array.iter
        (fun s ->
          let counts = Replay.run_many plan s placement in
          let ssrc = Replay.batch_src s in
          Array.iteri
            (fun j c ->
              incr seen;
              match by_caller.(ssrc.(j)) with
              | Some reference ->
                  let name, _, _ = configs.(ssrc.(j)) in
                  check_counts (Printf.sprintf "%d-way shard lane %s" shards name) c reference
              | None -> Alcotest.fail "shard lane not in unsharded batch")
            counts)
        sub;
      Alcotest.(check int)
        (Printf.sprintf "%d-way sharding covers all lanes" shards)
        (Replay.batch_lanes batch) !seen)
    [ 2; 4; 7 ]

let check_studies_equal label (a : Sweep.cache_study) (b : Sweep.cache_study) =
  Alcotest.(check int)
    (label ^ ": point count")
    (Array.length b.Sweep.cache_points)
    (Array.length a.Sweep.cache_points);
  Array.iteri
    (fun i (pa : Sweep.cache_point) ->
      let pb = b.Sweep.cache_points.(i) in
      Alcotest.(check string) (label ^ ": name") pb.Sweep.geometry_name pa.Sweep.geometry_name;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s mpki+cpi bit-identical" label pa.Sweep.geometry_name)
        true
        (pa.Sweep.l1i_mpki = pb.Sweep.l1i_mpki
        && pa.Sweep.l2_mpki = pb.Sweep.l2_mpki
        && pa.Sweep.cache_cpi = pb.Sweep.cache_cpi))
    a.Sweep.cache_points;
  Alcotest.(check bool)
    (label ^ ": seed point + degradation model bit-identical")
    true
    (a.Sweep.seed_point = b.Sweep.seed_point
    && a.Sweep.degradation.Pi_stats.Multireg.coefficients
       = b.Sweep.degradation.Pi_stats.Multireg.coefficients
    && a.Sweep.degradation.Pi_stats.Multireg.intercept
       = b.Sweep.degradation.Pi_stats.Multireg.intercept
    && a.Sweep.predicted_seed_cpi = b.Sweep.predicted_seed_cpi)

(* The study-level contract: fused (any shard count, sequential or
   Scheduler-parallel) == per-geometry sequential loop, the `--jobs 1` ==
   `--jobs 4` determinism case included. *)
let test_study_fused_equals_sequential () =
  let p, trace = traced "400.perlbench" in
  let placement = Placement.make p ~seed:3 in
  let benchmark = "400.perlbench" in
  let baseline =
    Sweep.run_cache_study ~warmup_blocks:500 ~fused:false ~benchmark trace placement
  in
  Alcotest.(check int) "baseline fallback lanes" 100 baseline.Sweep.cache_fallback_lanes;
  Alcotest.(check string)
    "seed point is the seed machine" "l1i-w8+l2-w8" baseline.Sweep.seed_point.Sweep.geometry_name;
  let fused = Sweep.run_cache_study ~warmup_blocks:500 ~benchmark trace placement in
  Alcotest.(check int) "fused lanes" 100 fused.Sweep.cache_fused_lanes;
  Alcotest.(check int) "fallback lanes" 0 fused.Sweep.cache_fallback_lanes;
  Alcotest.(check int) "warmup recorded" 500 fused.Sweep.cache_warmup_blocks;
  check_studies_equal "fused==sequential" fused baseline;
  let sharded_seq =
    Sweep.run_cache_study ~warmup_blocks:500 ~shards:4 ~benchmark trace placement
  in
  Alcotest.(check int) "4 shards recorded" 4 sharded_seq.Sweep.cache_shards;
  check_studies_equal "shards=4 sequential" sharded_seq baseline;
  let jobs1 =
    Sweep.run_cache_study ~warmup_blocks:500 ~shards:4
      ~map_shards:(Pi_campaign.Campaign.sweep_shard_map ~jobs:1 ())
      ~benchmark trace placement
  in
  let jobs4 =
    Sweep.run_cache_study ~warmup_blocks:500 ~shards:4
      ~map_shards:(Pi_campaign.Campaign.sweep_shard_map ~jobs:4 ())
      ~benchmark trace placement
  in
  check_studies_equal "jobs=1" jobs1 baseline;
  check_studies_equal "jobs=4 == jobs=1" jobs4 jobs1

(* Satellite: the symbolic grid is memoized — one shared list, not a
   rebuild per call — and materializes to 100 distinct geometry pairs
   containing the seed. *)
let test_configurations_memoized () =
  Alcotest.(check bool)
    "cache_configurations () returns the same list" true
    (Sweep.cache_configurations () == Sweep.cache_configurations ());
  Alcotest.(check int) "100 configurations" 100 (List.length (Sweep.cache_configurations ()));
  let base = Machine.xeon_e5440 in
  let configs = geometries base in
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun (name, gi, gd) ->
      Alcotest.(check bool) (name ^ " distinct") false (Hashtbl.mem seen (gi, gd));
      Hashtbl.add seen (gi, gd) ())
    configs;
  Alcotest.(check bool)
    "grid contains the seed geometries" true
    (Array.exists
       (fun (_, gi, gd) -> gi = base.Pipeline.l1i && gd = base.Pipeline.l2)
       configs)

let check_invalid_arg label f =
  match f () with
  | _ -> Alcotest.fail (label ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

(* Satellite: Cache.create validates geometry instead of silently
   mis-indexing. *)
let test_cache_create_validation () =
  let g = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 } in
  ignore (Cache.create g);
  (* 48K/12-way/64B is legitimate: 64 sets, a power of two. *)
  ignore (Cache.create { Cache.size_bytes = 48 * 1024; assoc = 12; line_bytes = 64 });
  check_invalid_arg "zero size" (fun () -> Cache.create { g with Cache.size_bytes = 0 });
  check_invalid_arg "negative size" (fun () -> Cache.create { g with Cache.size_bytes = -1024 });
  check_invalid_arg "zero assoc" (fun () -> Cache.create { g with Cache.assoc = 0 });
  check_invalid_arg "negative assoc" (fun () -> Cache.create { g with Cache.assoc = -2 });
  check_invalid_arg "zero line" (fun () -> Cache.create { g with Cache.line_bytes = 0 });
  check_invalid_arg "non-pow2 line" (fun () -> Cache.create { g with Cache.line_bytes = 48 });
  check_invalid_arg "size not divisible by assoc*line" (fun () ->
      Cache.create { g with Cache.size_bytes = 1000 });
  check_invalid_arg "non-pow2 set count" (fun () ->
      (* 24K / (8 * 64B) = 48 sets: divisible, but not a power of two. *)
      Cache.create { g with Cache.size_bytes = 24 * 1024 })

(* Satellite: batch construction rejects duplicates and mixed line sizes
   with clear errors, and way-disabling cannot add ways. *)
let test_batch_rejections () =
  let base = Machine.xeon_e5440 in
  let l1i = base.Pipeline.l1i and l2 = base.Pipeline.l2 in
  check_invalid_arg "duplicate geometry pair" (fun () ->
      Replay.cache_batch_of ~l1i ~l2 [| ("a", l1i, l2); ("b", l1i, l2) |]);
  check_invalid_arg "mixed L1I line size" (fun () ->
      Replay.cache_batch_of ~l1i ~l2 [| ("a", { l1i with Cache.line_bytes = 32 }, l2) |]);
  check_invalid_arg "mixed L2 line size" (fun () ->
      Replay.cache_batch_of ~l1i ~l2 [| ("a", l1i, { l2 with Cache.line_bytes = 128 }) |]);
  check_invalid_arg "invalid lane geometry" (fun () ->
      Replay.cache_batch_of ~l1i ~l2 [| ("a", { l1i with Cache.size_bytes = 24 * 1024 }, l2) |]);
  check_invalid_arg "way-disabling beyond the seed" (fun () ->
      ignore (Sweep.apply_cache_variant { l1i with Cache.assoc = 4 } (Sweep.Ways 8)))

let suite =
  [
    ( "cache_sweep",
      [
        Alcotest.test_case "golden matrix: 100 lanes x 3 benches x 2 seeds x 2 machines" `Quick
          test_golden_matrix;
        Alcotest.test_case "golden with warmup" `Quick test_golden_with_warmup;
        Alcotest.test_case "shard partition and merge" `Quick test_shard_partition;
        Alcotest.test_case "study: fused == sequential, jobs 1 == jobs 4" `Quick
          test_study_fused_equals_sequential;
        Alcotest.test_case "cache_configurations memoized and distinct" `Quick
          test_configurations_memoized;
        Alcotest.test_case "Cache.create geometry validation" `Quick test_cache_create_validation;
        Alcotest.test_case "batch rejects duplicates and mixed lines" `Quick
          test_batch_rejections;
      ] );
  ]
