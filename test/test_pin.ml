(* Tests for the Pin-style branch-predictor tool, including the
   cross-validation against the timing pipeline: both walk the same dynamic
   branch stream at the same addresses, so a given predictor must score
   identical misprediction counts in both. *)

module Bp_sim = Pi_pin.Bp_sim
module Pipeline = Pi_uarch.Pipeline
module Machine = Pi_uarch.Machine
module Placement = Pi_layout.Placement

let prepared_example () =
  let bench = Pi_workloads.Spec.find "400.perlbench" in
  let p = bench.Pi_workloads.Bench.build ~scale:1 in
  let trace = Pi_layout.Run_limiter.trace p ~budget_blocks:12_000 in
  (p, trace)

let test_pin_deterministic () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:4).Placement.code in
  let run () = Bp_sim.run trace code [ Pi_uarch.Hybrid.xeon_like ] in
  match (run (), run ()) with
  | [ a ], [ b ] ->
      Alcotest.(check int) "zero variance across runs" a.Bp_sim.mispredicted b.Bp_sim.mispredicted
  | _ -> Alcotest.fail "expected single results"

let test_pin_perfect_predictor () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:4).Placement.code in
  match Bp_sim.run trace code [ Pi_uarch.Perfect.perfect ] with
  | [ r ] ->
      Alcotest.(check int) "no mispredicts" 0 r.Bp_sim.mispredicted;
      Alcotest.(check bool) "counted branches" true (r.Bp_sim.branches > 100)
  | _ -> Alcotest.fail "expected one result"

let test_pin_multiple_predictors_one_pass () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:4).Placement.code in
  let results =
    Bp_sim.run trace code
      [
        (fun () -> Pi_uarch.Bimodal.create ~entries_log2:12);
        Pi_uarch.Hybrid.xeon_like;
        Pi_uarch.Perfect.perfect;
      ]
  in
  Alcotest.(check int) "three results" 3 (List.length results);
  let branches = List.map (fun r -> r.Bp_sim.branches) results in
  Alcotest.(check bool) "same stream for all" true
    (List.for_all (fun b -> b = List.hd branches) branches)

let test_pin_matches_pipeline () =
  (* The decisive consistency check: the pipeline's conditional-mispredict
     count and the Pin tool's count must agree exactly for the same
     predictor, trace and code layout (warmup 0, wrong-path effects do not
     influence direction prediction). *)
  let p, trace = prepared_example () in
  let placement = Placement.make p ~seed:9 in
  let pipeline_counts =
    Pipeline.run
      (Machine.with_predictor Machine.xeon_e5440 ~name:"x" Pi_uarch.Hybrid.xeon_like)
      trace placement
  in
  match Bp_sim.run trace placement.Placement.code [ Pi_uarch.Hybrid.xeon_like ] with
  | [ pin ] ->
      Alcotest.(check int) "identical mispredict counts"
        pipeline_counts.Pipeline.cond_mispredicts pin.Bp_sim.mispredicted
  | _ -> Alcotest.fail "expected one result"

let test_pin_layout_sensitivity () =
  let p, trace = prepared_example () in
  let mpki seed =
    let code = (Placement.make p ~seed).Placement.code in
    match Bp_sim.run trace code [ Pi_uarch.Hybrid.xeon_like ] with
    | [ r ] -> r.Bp_sim.mpki
    | _ -> assert false
  in
  let values = List.init 6 (fun i -> mpki (i + 1)) in
  let distinct = List.sort_uniq compare values in
  Alcotest.(check bool) "layout changes the MPKI" true (List.length distinct > 1)

let test_pin_warmup_reduces_counts () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:2).Placement.code in
  let full =
    match Bp_sim.run trace code [ Pi_uarch.Hybrid.xeon_like ] with
    | [ r ] -> r
    | _ -> assert false
  in
  let warm =
    match Bp_sim.run ~warmup_branches:2_000 trace code [ Pi_uarch.Hybrid.xeon_like ] with
    | [ r ] -> r
    | _ -> assert false
  in
  Alcotest.(check int) "branches reduced by warmup" (full.Bp_sim.branches - 2_000)
    warm.Bp_sim.branches

let test_per_branch_totals () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:3).Placement.code in
  let per = Bp_sim.per_branch_mispredicts trace code Pi_uarch.Hybrid.xeon_like in
  let total_exec = Array.fold_left (fun acc (e, _) -> acc + e) 0 per in
  let total_misp = Array.fold_left (fun acc (_, m) -> acc + m) 0 per in
  let summary =
    match Bp_sim.run trace code [ Pi_uarch.Hybrid.xeon_like ] with
    | [ r ] -> r
    | _ -> assert false
  in
  Alcotest.(check int) "executions sum" summary.Bp_sim.branches total_exec;
  Alcotest.(check int) "mispredicts sum" summary.Bp_sim.mispredicted total_misp;
  Array.iter
    (fun (e, m) -> Alcotest.(check bool) "mispredicts <= executions" true (m <= e))
    per

let predictors_under_test =
  [
    (fun () -> Pi_uarch.Bimodal.create ~entries_log2:12);
    (fun () -> Pi_uarch.Gshare.create ~entries_log2:12 ~history_bits:8);
    Pi_uarch.Hybrid.xeon_like;
  ]

let results_equal (a : Bp_sim.result list) (b : Bp_sim.result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Bp_sim.result) (y : Bp_sim.result) ->
         x.Bp_sim.predictor_name = y.Bp_sim.predictor_name
         && x.Bp_sim.branches = y.Bp_sim.branches
         && x.Bp_sim.mispredicted = y.Bp_sim.mispredicted
         && x.Bp_sim.instructions = y.Bp_sim.instructions
         && x.Bp_sim.mpki = y.Bp_sim.mpki)
       a b

let test_precompiled_stream_equivalence () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:6).Placement.code in
  let stream = Bp_sim.compile_stream trace in
  Alcotest.(check bool) "stream non-empty" true (Bp_sim.stream_length stream > 100);
  Alcotest.(check bool) "stream = per-call compile" true
    (results_equal
       (Bp_sim.run ~stream trace code predictors_under_test)
       (Bp_sim.run trace code predictors_under_test));
  (* Warmup must be applied at the same stream offsets either way. *)
  Alcotest.(check bool) "with warmup too" true
    (results_equal
       (Bp_sim.run ~warmup_branches:1_000 ~stream trace code predictors_under_test)
       (Bp_sim.run ~warmup_branches:1_000 trace code predictors_under_test))

let test_batched_equivalence () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:6).Placement.code in
  let stream = Bp_sim.compile_stream trace in
  Alcotest.(check bool) "batched = per-predictor passes" true
    (results_equal
       (Bp_sim.run ~stream ~batched:true trace code predictors_under_test)
       (Bp_sim.run ~stream ~batched:false trace code predictors_under_test));
  Alcotest.(check bool) "batched with warmup" true
    (results_equal
       (Bp_sim.run ~warmup_branches:500 ~batched:true trace code predictors_under_test)
       (Bp_sim.run ~warmup_branches:500 trace code predictors_under_test))

let test_per_branch_stream_equivalence () =
  let p, trace = prepared_example () in
  let code = (Placement.make p ~seed:3).Placement.code in
  let stream = Bp_sim.compile_stream trace in
  Alcotest.(check bool) "per-branch profile unchanged by stream reuse" true
    (Bp_sim.per_branch_mispredicts ~stream trace code Pi_uarch.Hybrid.xeon_like
    = Bp_sim.per_branch_mispredicts trace code Pi_uarch.Hybrid.xeon_like)

let suite =
  [
    ( "pin.bp_sim",
      [
        Alcotest.test_case "deterministic" `Quick test_pin_deterministic;
        Alcotest.test_case "perfect predictor" `Quick test_pin_perfect_predictor;
        Alcotest.test_case "multi-predictor single pass" `Quick test_pin_multiple_predictors_one_pass;
        Alcotest.test_case "matches pipeline counts" `Quick test_pin_matches_pipeline;
        Alcotest.test_case "layout sensitivity" `Quick test_pin_layout_sensitivity;
        Alcotest.test_case "warmup window" `Quick test_pin_warmup_reduces_counts;
        Alcotest.test_case "per-branch totals" `Quick test_per_branch_totals;
        Alcotest.test_case "precompiled stream equivalence" `Quick
          test_precompiled_stream_equivalence;
        Alcotest.test_case "batched mode equivalence" `Quick test_batched_equivalence;
        Alcotest.test_case "per-branch stream equivalence" `Quick
          test_per_branch_stream_equivalence;
      ] );
  ]
