(* Multi-process campaign coordinator: worker pool round trips, the
   bit-identity invariant against the in-process path, and worker-death
   recovery (SIGKILL → respawn → re-dispatch) with no result drift.

   These tests spawn the real CLI binary's hidden [campaign-worker]
   subcommand — the dune stanza depends on it, and the path is derived
   from the test runner's own location so cwd does not matter. *)

module J = Pi_campaign.Telemetry
module E = Interferometry.Experiment
module Campaign = Pi_campaign.Campaign
module Coordinator = Pi_campaign.Coordinator
module Metrics = Pi_obs.Metrics
module Spec = Pi_workloads.Spec
module Bench = Pi_workloads.Bench
module C = Pi_uarch.Counters

(* _build/default/test/test_main.exe -> _build/default/bin/interferometry_cli.exe *)
let cli_exe =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "interferometry_cli.exe"

let config_args = [ ("quick", J.Bool true) ]
let bench_name = "456.hmmer"

let with_pool ~workers f =
  let pool = Coordinator.create ~exe:cli_exe ~workers ~config_args () in
  Fun.protect ~finally:(fun () -> Coordinator.shutdown pool) (fun () -> f pool)

let check_measurement name (a : E.observation) (b : E.observation) =
  Alcotest.(check int) (name ^ " seed") a.E.layout_seed b.E.layout_seed;
  List.iter
    (fun (field, get) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s %s bit-identical" name field)
        (get a.E.measurement) (get b.E.measurement))
    [
      ("cpi", fun m -> m.C.cpi);
      ("mpki", fun m -> m.C.mpki);
      ("l1i_mpki", fun m -> m.C.l1i_mpki);
      ("l1d_mpki", fun m -> m.C.l1d_mpki);
      ("l2_mpki", fun m -> m.C.l2_mpki);
      ("cycles", fun m -> m.C.cycles);
      ("instructions", fun m -> m.C.instructions);
    ]

let test_pool_observe_bit_identical () =
  let config = Coordinator.config_of_args config_args in
  let prepared = E.prepare ~config (Spec.find bench_name) in
  with_pool ~workers:2 (fun pool ->
      Alcotest.(check int) "pool size" 2 (Coordinator.workers pool);
      Alcotest.(check int) "two live pids" 2 (List.length (Coordinator.pids pool));
      List.iter
        (fun seed ->
          let remote = Coordinator.observe pool ~bench:bench_name ~seed in
          let local = E.observe_seed prepared seed in
          check_measurement (Printf.sprintf "seed %d" seed) local remote)
        [ 1; 2; 3; 4 ])

let test_pool_job_failure_is_not_death () =
  (* An unknown benchmark fails the job on a healthy worker: Failure, not
     Worker_died, and the pool keeps serving real jobs afterwards. *)
  let config = Coordinator.config_of_args config_args in
  let prepared = E.prepare ~config (Spec.find bench_name) in
  with_pool ~workers:1 (fun pool ->
      (match Coordinator.observe pool ~bench:"no.such.bench" ~seed:1 with
      | exception Failure _ -> ()
      | exception Coordinator.Worker_died _ ->
          Alcotest.fail "job error misreported as worker death"
      | _ -> Alcotest.fail "unknown benchmark succeeded");
      let remote = Coordinator.observe pool ~bench:bench_name ~seed:1 in
      check_measurement "after failed job" (E.observe_seed prepared 1) remote)

let test_worker_death_respawn_redispatch () =
  let config = Coordinator.config_of_args config_args in
  let prepared = E.prepare ~config (Spec.find bench_name) in
  let deaths = Metrics.counter "pi_obs_coordinator_worker_deaths_total" in
  let redispatches = Metrics.counter "pi_obs_coordinator_redispatches_total" in
  let deaths0 = Metrics.counter_value deaths in
  let redispatches0 = Metrics.counter_value redispatches in
  with_pool ~workers:2 (fun pool ->
      let original = Coordinator.pids pool in
      (* SIGKILL both workers: every in-flight dispatch must detect the
         death, respawn into the slot, and re-run the job — transparently. *)
      List.iter (fun pid -> Unix.kill pid Sys.sigkill) original;
      List.iter
        (fun seed ->
          let remote = Coordinator.observe pool ~bench:bench_name ~seed in
          check_measurement
            (Printf.sprintf "post-kill seed %d" seed)
            (E.observe_seed prepared seed) remote)
        [ 1; 2; 3 ];
      let survivors = Coordinator.pids pool in
      Alcotest.(check int) "pool is back to strength" 2 (List.length survivors);
      List.iter
        (fun pid ->
          Alcotest.(check bool) "respawned pid is fresh" false
            (List.mem pid original))
        survivors);
  Alcotest.(check bool) "deaths counted" true
    (Metrics.counter_value deaths - deaths0 >= 2);
  Alcotest.(check bool) "re-dispatches counted" true
    (Metrics.counter_value redispatches - redispatches0 >= 2)

let test_campaign_distributed_bit_identical () =
  (* The acceptance invariant end to end: a campaign whose observation
     jobs run on worker processes — including one killed before the first
     dispatch — is bit-identical to the plain in-process campaign. *)
  let config = Coordinator.config_of_args config_args in
  let benches = [ Spec.find "400.perlbench"; Spec.find bench_name ] in
  let baseline = Campaign.run ~config ~jobs:1 ~n_layouts:6 benches in
  let distributed =
    with_pool ~workers:2 (fun pool ->
        (* Kill one worker up front: the campaign must ride the respawn. *)
        Unix.kill (List.hd (Coordinator.pids pool)) Sys.sigkill;
        Campaign.run ~config ~jobs:2
          ~observe:(Coordinator.observe_hook pool)
          ~n_layouts:6 benches)
  in
  Alcotest.(check bool) "distributed campaign succeeded" true
    (Campaign.succeeded distributed);
  List.iter
    (fun (b : Bench.t) ->
      let find (r : Campaign.result) =
        match
          List.find_opt
            (fun (o : Campaign.bench_outcome) -> o.Campaign.bench.Bench.name = b.Bench.name)
            r.Campaign.outcomes
        with
        | Some { Campaign.dataset = Some d; _ } -> d
        | _ -> Alcotest.failf "no dataset for %s" b.Bench.name
      in
      let db = find baseline and dd = find distributed in
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " cpis identical") (E.cpis db) (E.cpis dd);
      Alcotest.(check (array (float 0.0)))
        (b.Bench.name ^ " mpkis identical") (E.mpkis db) (E.mpkis dd))
    benches

let test_hello_handshake () =
  (* The worker re-derives the config from config_args and digest-checks
     it at handshake; non-default knobs must still shake hands cleanly. *)
  match
    Coordinator.create ~exe:cli_exe ~workers:1
      ~config_args:[ ("quick", J.Bool true); ("seed", J.Int 7) ]
      ()
  with
  | pool ->
      (* Sanity: an honest handshake with extra args still works. *)
      Coordinator.shutdown pool
  | exception Failure _ -> Alcotest.fail "honest handshake refused"

let test_config_of_args_roundtrip () =
  let args =
    [
      ("quick", J.Bool true);
      ("seed", J.Int 1234);
      ("scale", J.Int 2);
      ("heap_random", J.Bool true);
    ]
  in
  let config = Coordinator.config_of_args args in
  Alcotest.(check int) "seed decoded" 1234 config.E.master_seed;
  Alcotest.(check int) "scale decoded" 2 config.E.scale;
  Alcotest.(check bool) "heap_random decoded" true config.E.heap_random;
  (* Defaults: no args is the default config. *)
  let plain = Coordinator.config_of_args [] in
  Alcotest.(check string) "empty args is the default config"
    (Pi_campaign.Obs_cache.config_digest E.default_config)
    (Pi_campaign.Obs_cache.config_digest plain)

let suite =
  [
    ( "distributed",
      [
        Alcotest.test_case "config_of_args round trip" `Quick
          test_config_of_args_roundtrip;
        Alcotest.test_case "worker pool == in-process (bit-identical)" `Quick
          test_pool_observe_bit_identical;
        Alcotest.test_case "job failure on a healthy worker is not a death" `Quick
          test_pool_job_failure_is_not_death;
        Alcotest.test_case "SIGKILL: respawn + re-dispatch, identical results" `Quick
          test_worker_death_respawn_redispatch;
        Alcotest.test_case "distributed campaign rides a worker death" `Quick
          test_campaign_distributed_bit_identical;
        Alcotest.test_case "worker handshake accepts honest config args" `Quick
          test_hello_handshake;
      ] );
  ]
