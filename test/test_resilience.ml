(* Tests for the campaign resilience layer: deterministic fault injection,
   scheduler retry/backoff, crash-safe cache writes, checkpoint manifests
   and the resume path. The governing invariant throughout: faults,
   retries, interrupts and resumes must never change the science — every
   recovered campaign is bit-identical to an undisturbed one. *)

module E = Interferometry.Experiment
module Campaign = Pi_campaign.Campaign
module Scheduler = Pi_campaign.Scheduler
module Obs_cache = Pi_campaign.Obs_cache
module Manifest = Pi_campaign.Manifest
module Telemetry = Pi_campaign.Telemetry
module Fault = Pi_campaign.Fault
module Spec = Pi_workloads.Spec
module Bench = Pi_workloads.Bench

let quick = E.quick_config
let benches () = [ Spec.find "400.perlbench"; Spec.find "456.hmmer" ]

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let copy_dir src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let contents =
        In_channel.with_open_bin (Filename.concat src name) In_channel.input_all
      in
      Out_channel.with_open_bin (Filename.concat dst name) (fun oc ->
          Out_channel.output_string oc contents))
    (Sys.readdir src)

let dataset_of (result : Campaign.result) name =
  match
    List.find_opt
      (fun (o : Campaign.bench_outcome) -> o.Campaign.bench.Bench.name = name)
      result.Campaign.outcomes
  with
  | Some { Campaign.dataset = Some d; _ } -> d
  | _ -> Alcotest.failf "no dataset for %s" name

let check_identical ~msg reference result =
  List.iter
    (fun b ->
      let dr = dataset_of reference b.Bench.name and dt = dataset_of result b.Bench.name in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "%s: %s cpis" msg b.Bench.name)
        (E.cpis dr) (E.cpis dt);
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "%s: %s mpkis" msg b.Bench.name)
        (E.mpkis dr) (E.mpkis dt))
    (benches ())

(* ---------------- Fault specs ---------------- *)

let test_fault_parse () =
  (match Fault.parse "rate=0.3,kind=exn+corrupt-cache,seed=7,delay=0.25" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok t ->
      Alcotest.(check (float 0.0)) "rate" 0.3 t.Fault.rate;
      Alcotest.(check int) "seed" 7 t.Fault.seed;
      Alcotest.(check (float 0.0)) "delay" 0.25 t.Fault.delay;
      Alcotest.(check (list string)) "kinds"
        [ "exn"; "corrupt-cache" ]
        (List.map Fault.kind_name t.Fault.kinds);
      (* describe is parseable and round-trips. *)
      Alcotest.(check bool) "describe round-trips" true (Fault.parse (Fault.describe t) = Ok t));
  (match Fault.parse "rate=1" with
  | Ok t -> Alcotest.(check (list string)) "default kind" [ "exn" ] (List.map Fault.kind_name t.Fault.kinds)
  | Error e -> Alcotest.failf "minimal spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad
      | Error e -> Alcotest.(check bool) "error text" true (String.length e > 0))
    [ ""; "kind=exn"; "rate=1.5"; "rate=x"; "rate=0.5,kind=nope"; "rate=0.5,frobnicate=1"; "rate" ]

let test_fault_determinism () =
  let t = { Fault.rate = 0.5; kinds = [ Fault.Exn; Fault.Delay ]; seed = 3; delay = 0.0 } in
  (* Pure: the same (site, attempt) always draws the same fault. *)
  List.iter
    (fun site ->
      List.iter
        (fun attempt ->
          Alcotest.(check bool) "draw is pure" true
            (Fault.draw t ~site ~attempt = Fault.draw t ~site ~attempt))
        [ 1; 2; 3 ])
    [ "job|400.perlbench|1"; "job|456.hmmer|9"; "store|x|2" ];
  (* rate=0 never fires; rate=1 always fires. *)
  let never = { t with Fault.rate = 0.0 } and always = { t with Fault.rate = 1.0 } in
  for s = 1 to 50 do
    let site = Printf.sprintf "site|%d" s in
    Alcotest.(check bool) "rate=0 silent" true (Fault.draw never ~site ~attempt:1 = None);
    Alcotest.(check bool) "rate=1 fires" true (Fault.draw always ~site ~attempt:1 <> None)
  done;
  (* Attempt-keyed draws make faults transient: at rate 0.5 every one of
     these sites stops faulting within a few retries. *)
  let clears site =
    let rec go attempt = attempt <= 10 && (Fault.draw t ~site ~attempt = None || go (attempt + 1)) in
    go 1
  in
  for s = 1 to 20 do
    Alcotest.(check bool) "fault clears under retry" true (clears (Printf.sprintf "job|b|%d" s))
  done;
  (* hash_uniform: in [0, 1), seed- and key-sensitive. *)
  let u = Fault.hash_uniform ~seed:0 "k" in
  Alcotest.(check bool) "uniform in range" true (u >= 0.0 && u < 1.0);
  Alcotest.(check (float 0.0)) "uniform deterministic" u (Fault.hash_uniform ~seed:0 "k");
  Alcotest.(check bool) "seed matters" true (u <> Fault.hash_uniform ~seed:1 "k");
  Alcotest.(check bool) "key matters" true (u <> Fault.hash_uniform ~seed:0 "k2")

(* ---------------- Scheduler retries ---------------- *)

let test_scheduler_retries () =
  (* Tasks fail their first [i mod 3] attempts, then succeed: with
     retries=2 everything recovers, attempts are counted, and on_retry
     fires once per extra attempt. *)
  let n = 9 in
  let tries = Array.make n 0 in
  let retry_events = ref [] in
  let completions =
    Scheduler.map ~jobs:1 ~retries:2 ~backoff:0.0
      ~on_retry:(fun i ~attempt ~backoff e ~pending:_ ->
        Alcotest.(check bool) "backoff nonnegative" true (backoff >= 0.0);
        Alcotest.(check bool) "error text present" true (String.length e.Scheduler.message > 0);
        retry_events := (i, attempt) :: !retry_events)
      (fun i ->
        tries.(i) <- tries.(i) + 1;
        if tries.(i) <= i mod 3 then failwith "flaky" else i * 10)
      n
  in
  Array.iteri
    (fun i (c : int Scheduler.completion) ->
      Alcotest.(check int) "attempts spent" ((i mod 3) + 1) c.Scheduler.attempts;
      Alcotest.(check (float 1e-6)) "elapsed spans all attempts"
        (c.Scheduler.finished -. c.Scheduler.started)
        c.Scheduler.elapsed;
      match c.Scheduler.result with
      | Ok v -> Alcotest.(check int) "recovered value" (i * 10) v
      | Error e -> Alcotest.failf "task %d not recovered: %s" i e.Scheduler.message)
    completions;
  let expected_retries =
    List.init n (fun i -> i mod 3) |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "one on_retry per extra attempt" expected_retries
    (List.length !retry_events)

let test_scheduler_retries_exhausted () =
  let completions =
    Scheduler.map ~jobs:1 ~retries:2 ~backoff:0.0 (fun _ -> failwith "hopeless") 3
  in
  Array.iter
    (fun (c : unit Scheduler.completion) ->
      Alcotest.(check int) "all attempts spent" 3 c.Scheduler.attempts;
      match c.Scheduler.result with
      | Ok () -> Alcotest.fail "hopeless task succeeded"
      | Error e ->
          Alcotest.(check bool) "last error recorded" true
            (String.length e.Scheduler.message > 0))
    completions;
  (* Parameter validation. *)
  Alcotest.check_raises "negative retries rejected"
    (Invalid_argument "Scheduler.map: retries < 0") (fun () ->
      ignore (Scheduler.map ~retries:(-1) (fun i -> i) 1));
  Alcotest.check_raises "negative backoff rejected"
    (Invalid_argument "Scheduler.map: backoff < 0") (fun () ->
      ignore (Scheduler.map ~backoff:(-0.5) (fun i -> i) 1))

let test_scheduler_deadline_consistent () =
  (* The satellite fix: the elapsed time printed in the deadline error is
     the same single clock reading the deadline decision used. *)
  let completions =
    Scheduler.map ~jobs:1 ~deadline:0.001 (fun _ -> Unix.sleepf 0.01) 2
  in
  Array.iter
    (fun (c : unit Scheduler.completion) ->
      match c.Scheduler.result with
      | Ok () -> Alcotest.fail "deadline should have fired"
      | Error e ->
          Scanf.sscanf e.Scheduler.message "deadline exceeded: %fs > %fs limit"
            (fun reported limit ->
              Alcotest.(check (float 0.0)) "limit echoed" 0.001 limit;
              Alcotest.(check bool) "reported elapsed beats the limit" true
                (reported > limit);
              (* The message's elapsed is the task's own window, not some
                 later clock read: it can never exceed the completion's
                 recorded elapsed. *)
              Alcotest.(check bool) "reported <= completion elapsed" true
                (reported <= c.Scheduler.elapsed +. 1e-9)))
    completions

(* ---------------- Crash-safe cache writes ---------------- *)

let observations () =
  (E.run ~config:quick (Spec.find "456.hmmer") ~n_layouts:3).E.observations

let test_store_tmp_hygiene () =
  let dir = temp_dir "pi-resilience-tmp" in
  let cache = Obs_cache.create ~dir in
  let obs = observations () in
  Obs_cache.store cache ~bench:"456.hmmer" ~config:quick obs;
  Obs_cache.store cache ~bench:"456.hmmer" ~config:quick obs;
  let tmps d =
    Sys.readdir d |> Array.to_list |> List.filter (fun n -> Filename.check_suffix n ".tmp")
  in
  Alcotest.(check (list string)) "no temp files survive a store" [] (tmps dir);
  Alcotest.(check int) "entry loadable" 3
    (Array.length (Obs_cache.load cache ~bench:"456.hmmer" ~config:quick));
  (* Orphan reaping: a stale temp (crashed writer) is removed on create,
     a fresh one (live concurrent writer) is left alone. *)
  let write path = Out_channel.with_open_bin path (fun oc -> output_string oc "junk") in
  let stale = Filename.concat dir "dead.0.0.tmp" in
  let fresh = Filename.concat dir "live.1.0.tmp" in
  write stale;
  write fresh;
  let old = Unix.time () -. 3600.0 in
  Unix.utimes stale old old;
  ignore (Obs_cache.create ~dir);
  Alcotest.(check bool) "stale orphan reaped" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh temp spared" true (Sys.file_exists fresh);
  Alcotest.(check int) "entries untouched by reaping" 3
    (Array.length (Obs_cache.load cache ~bench:"456.hmmer" ~config:quick))

let test_sanitize_bench_name () =
  (* Registry names pass through byte-identical. *)
  List.iter
    (fun b ->
      Alcotest.(check string) "registry name unchanged" b.Bench.name
        (Obs_cache.sanitize_bench_name b.Bench.name))
    (Spec.everything ());
  Alcotest.(check string) "slash escaped" "..%2Fescape" (Obs_cache.sanitize_bench_name "../escape");
  Alcotest.(check string) "percent escaped (injective)" "a%252Fb"
    (Obs_cache.sanitize_bench_name "a%2Fb");
  Alcotest.(check bool) "no collision between raw and pre-escaped" true
    (Obs_cache.sanitize_bench_name "a/b" <> Obs_cache.sanitize_bench_name "a%2Fb");
  let dir = temp_dir "pi-resilience-sanitize" in
  let cache = Obs_cache.create ~dir in
  List.iter
    (fun hostile ->
      let path = Obs_cache.entry_path cache ~bench:hostile ~config:quick in
      Alcotest.(check string) "entry stays inside the cache root" dir (Filename.dirname path))
    [ "../../etc/passwd"; "a/b/c"; ".."; "nul\000byte" ];
  (* A hostile name is usable end to end, not just contained. *)
  let obs = observations () in
  Obs_cache.store cache ~bench:"../escape" ~config:quick obs;
  Alcotest.(check int) "hostile name stores and loads" 3
    (Array.length (Obs_cache.load cache ~bench:"../escape" ~config:quick))

let test_corrupt_entry_is_miss () =
  let dir = temp_dir "pi-resilience-corrupt" in
  let cold = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:5 (benches ()) in
  Alcotest.(check int) "cold run computed all" 10 cold.Campaign.manifest.Manifest.computed_jobs;
  (* Tear one entry the way a crashed non-atomic writer would. *)
  let cache = Obs_cache.create ~dir in
  let torn =
    { Fault.rate = 1.0; kinds = [ Fault.Corrupt_cache ]; seed = 0; delay = 0.0 }
  in
  Alcotest.(check bool) "corruption fired" true
    (Fault.maybe_corrupt torn ~site:"test"
       (Obs_cache.entry_path cache ~bench:"456.hmmer" ~config:quick));
  Alcotest.(check int) "torn entry loads as a miss" 0
    (Array.length (Obs_cache.load cache ~bench:"456.hmmer" ~config:quick));
  (* The campaign recomputes the torn bench and heals the cache;
     observations are bit-identical to the undisturbed run. *)
  let healed = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:5 (benches ()) in
  Alcotest.(check int) "only the torn bench recomputed" 5
    healed.Campaign.manifest.Manifest.computed_jobs;
  Alcotest.(check int) "intact bench still cached" 5
    healed.Campaign.manifest.Manifest.cached_jobs;
  check_identical ~msg:"healed == cold" cold healed;
  let warm = Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~n_layouts:5 (benches ()) in
  Alcotest.(check int) "cache healed" 10 warm.Campaign.manifest.Manifest.cached_jobs

(* ---------------- Faulty campaigns ---------------- *)

let fault_exn rate seed = { Fault.rate; kinds = [ Fault.Exn ]; seed; delay = 0.0 }

let test_campaign_faults_with_retries () =
  let reference = Campaign.run ~config:quick ~jobs:2 ~n_layouts:6 (benches ()) in
  let faulty =
    Campaign.run ~config:quick ~jobs:2 ~retries:3 ~backoff:0.0
      ~fault:(fault_exn 0.3 1) ~n_layouts:6 (benches ())
  in
  Alcotest.(check bool) "faulty campaign still succeeds" true (Campaign.succeeded faulty);
  Alcotest.(check int) "no failed jobs" 0 faulty.Campaign.manifest.Manifest.failed_jobs;
  Alcotest.(check bool) "faults actually fired (retried_jobs > 0)" true
    (faulty.Campaign.manifest.Manifest.retried_jobs > 0);
  check_identical ~msg:"retried == undisturbed" reference faulty

let test_campaign_faults_without_retries () =
  let faulty =
    Campaign.run ~config:quick ~jobs:2 ~fault:(fault_exn 0.3 1) ~n_layouts:6 (benches ())
  in
  Alcotest.(check bool) "unretried faults fail the campaign" false
    (Campaign.succeeded faulty);
  Alcotest.(check bool) "failed jobs recorded" true
    (faulty.Campaign.manifest.Manifest.failed_jobs > 0);
  Alcotest.(check bool) "manifest not complete" false
    (Manifest.complete faulty.Campaign.manifest);
  (* The injected error is recognizable in the failure records. *)
  let some_injected =
    List.exists
      (fun (b : Manifest.bench_entry) ->
        List.exists
          (fun (f : Manifest.job_failure) ->
            let re = "injected fault" in
            let rec contains i =
              i + String.length re <= String.length f.Manifest.error
              && (String.sub f.Manifest.error i (String.length re) = re || contains (i + 1))
            in
            contains 0)
          b.Manifest.failures)
      faulty.Campaign.manifest.Manifest.benches
  in
  Alcotest.(check bool) "failure names the injected fault" true some_injected

(* ---------------- Checkpoint and resume ---------------- *)

let test_checkpoint_resume () =
  let reference = Campaign.run ~config:quick ~jobs:1 ~n_layouts:6 (benches ()) in
  let dir = temp_dir "pi-resilience-resume" in
  let ckpt = Filename.concat dir "manifest.json" in
  (* "Interrupt": injected faults without retries kill some jobs; the
     successful ones reach the cache incrementally, the checkpoint
     manifest reaches disk before any job runs. *)
  let interrupted =
    Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir ~checkpoint_path:ckpt
      ~config_args:[ ("quick", Telemetry.Bool true) ]
      ~fault:(fault_exn 0.4 2) ~n_layouts:6 (benches ())
  in
  let failed = interrupted.Campaign.manifest.Manifest.failed_jobs in
  Alcotest.(check bool) "some jobs were killed" true (failed > 0);
  Alcotest.(check bool) "some jobs survived" true (failed < 12);
  (* The checkpoint written at campaign start is loadable and marked. *)
  (match Manifest.load ~path:ckpt with
  | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
  | Ok m ->
      Alcotest.(check bool) "checkpoint flagged" true m.Manifest.checkpoint;
      Alcotest.(check bool) "checkpoint is not complete" false (Manifest.complete m);
      Alcotest.(check int) "identity: total jobs" 12 m.Manifest.total_jobs;
      Alcotest.(check int) "identity: layouts" 6 m.Manifest.n_layouts;
      Alcotest.(check string) "identity: config digest"
        (Obs_cache.config_digest quick) m.Manifest.config_digest;
      Alcotest.(check (option string)) "identity: cache dir" (Some dir) m.Manifest.cache_dir;
      Alcotest.(check bool) "config_args preserved" true
        (List.assoc_opt "quick" m.Manifest.config_args = Some (Telemetry.Bool true));
      Alcotest.(check (list string)) "identity: benches"
        (List.map (fun b -> b.Bench.name) (benches ()))
        (List.map (fun (b : Manifest.bench_entry) -> b.Manifest.bench) m.Manifest.benches));
  (* Resume twice from copies of the interrupted cache, at different
     parallelism: only the missing jobs are recomputed, and both resumed
     datasets are bit-identical to the undisturbed reference. *)
  List.iter
    (fun jobs ->
      let dir2 = temp_dir "pi-resilience-resume-copy" in
      Unix.rmdir dir2;
      copy_dir dir dir2;
      let resumed =
        Campaign.run ~config:quick ~jobs ~cache_dir:dir2 ~n_layouts:6 (benches ())
      in
      let m = resumed.Campaign.manifest in
      Alcotest.(check int) "resume recomputes exactly the missing jobs" failed
        m.Manifest.computed_jobs;
      Alcotest.(check int) "resume reuses every survivor" (12 - failed)
        m.Manifest.cached_jobs;
      Alcotest.(check int) "computed + cached = total" 12
        (m.Manifest.computed_jobs + m.Manifest.cached_jobs);
      Alcotest.(check bool) "resumed run complete" true (Manifest.complete m);
      check_identical ~msg:(Printf.sprintf "resume --jobs %d == undisturbed" jobs)
        reference resumed)
    [ 1; 3 ]

(* ---------------- Manifest round-trip ---------------- *)

let test_manifest_roundtrip () =
  (* A manifest with everything populated: retries, failures, fits,
     config_args. Byte-for-byte JSON fixpoint through render -> parse ->
     of_json -> render. *)
  let faulty =
    Campaign.run ~config:quick ~jobs:2 ~retries:3 ~backoff:0.0 ~cache_dir:(temp_dir "pi-rt")
      ~config_args:[ ("quick", Telemetry.Bool true); ("seed", Telemetry.Int 1) ]
      ~fault:(fault_exn 0.3 1) ~n_layouts:4 (benches ())
  in
  let m = faulty.Campaign.manifest in
  let rendered = Telemetry.to_string (Manifest.to_json m) in
  (match Telemetry.parse rendered with
  | Error e -> Alcotest.failf "rendered manifest unparsable: %s" e
  | Ok j -> (
      match Manifest.of_json j with
      | Error e -> Alcotest.failf "parsed manifest rejected: %s" e
      | Ok m2 ->
          Alcotest.(check string) "render/parse fixpoint" rendered
            (Telemetry.to_string (Manifest.to_json m2))));
  (* save/load agree with to_json/of_json. *)
  let path = Filename.temp_file "pi-manifest" ".json" in
  Manifest.save m ~path;
  (match Manifest.load ~path with
  | Error e -> Alcotest.failf "saved manifest unloadable: %s" e
  | Ok m2 ->
      Alcotest.(check string) "save/load fixpoint" rendered
        (Telemetry.to_string (Manifest.to_json m2)));
  (* A pre-resilience manifest (no retries/checkpoint/config_args fields)
     still loads, with defaults. *)
  let legacy =
    {|{"label":"2006","n_layouts":2,"jobs":1,"config_digest":"abc","cache_dir":null,
       "started_at":1.5,"wall_seconds":2.5,"total_jobs":2,"computed_jobs":2,
       "cached_jobs":0,"failed_jobs":0,"cache_hits":0,"cache_misses":0,
       "benches":[]}|}
  in
  match Telemetry.parse legacy with
  | Error e -> Alcotest.failf "legacy json unparsable: %s" e
  | Ok j -> (
      match Manifest.of_json j with
      | Error e -> Alcotest.failf "legacy manifest rejected: %s" e
      | Ok m ->
          Alcotest.(check bool) "legacy is not a checkpoint" false m.Manifest.checkpoint;
          Alcotest.(check int) "legacy has no retries" 0 m.Manifest.retried_jobs;
          Alcotest.(check bool) "legacy complete" true (Manifest.complete m))

(* ---------------- JSON parser ---------------- *)

let test_telemetry_parse () =
  let open Telemetry in
  let ok s = match parse s with Ok j -> j | Error e -> Alcotest.failf "%S: %s" s e in
  Alcotest.(check bool) "object with every type" true
    (ok {| {"a": [1, -2.5, true, false, null, "x\n\"yA"], "b": {}} |}
    = Obj
        [
          ( "a",
            List [ Int 1; Float (-2.5); Bool true; Bool false; Null; String "x\n\"yA" ] );
          ("b", Obj []);
        ]);
  Alcotest.(check bool) "bare int" true (ok "7" = Int 7);
  Alcotest.(check bool) "fraction is float" true (ok "7.0" = Float 7.0);
  Alcotest.(check bool) "exponent is float" true (ok "1e3" = Float 1000.0);
  Alcotest.(check bool) "string escapes" true (ok {|"\t\\\/"|} = String "\t\\/");
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error e -> Alcotest.(check bool) "describes failure" true (String.length e > 0))
    [ ""; "{"; "[1,"; "tru"; {|{"a" 1}|}; "1 2"; {|"unterminated|}; "{\"a\":}" ];
  (* Everything the renderer emits parses back to itself. *)
  let v =
    Obj
      [
        ("s", String "q\"\\\n\t");
        ("l", List [ Int 0; Int (-3); Float 0.125; Bool true; Null ]);
        ("o", Obj [ ("nested", List [ Obj [] ]) ]);
      ]
  in
  Alcotest.(check bool) "render/parse inverse" true (parse (to_string v) = Ok v)

(* ---------------- Resilience telemetry ---------------- *)

let test_resilience_events () =
  let path = Filename.temp_file "pi-resilience-events" ".jsonl" in
  let dir = temp_dir "pi-resilience-events-cache" in
  let sink = Telemetry.to_file path in
  let r =
    Fun.protect
      ~finally:(fun () -> Telemetry.close sink)
      (fun () ->
        Campaign.run ~config:quick ~jobs:2 ~cache_dir:dir
          ~checkpoint_path:(Filename.concat dir "manifest.json") ~events:sink ~retries:3
          ~backoff:0.0 ~fault:(fault_exn 0.3 1) ~n_layouts:6 (benches ()))
  in
  Alcotest.(check bool) "campaign recovered" true (Campaign.succeeded r);
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let count name =
    let prefix = Printf.sprintf {|{"event":"%s",|} name in
    List.length
      (List.filter
         (fun l ->
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
         lines)
  in
  Alcotest.(check int) "one checkpoint_saved" 1 (count "checkpoint_saved");
  Alcotest.(check int) "job_retried matches the manifest" r.Campaign.manifest.Manifest.retried_jobs
    (count "job_retried");
  Alcotest.(check bool) "retries happened" true (count "job_retried" > 0);
  (* Every emitted line parses with the new reader. *)
  List.iter
    (fun l ->
      match Telemetry.parse l with
      | Ok (Telemetry.Obj _) -> ()
      | Ok _ -> Alcotest.failf "event line not an object: %s" l
      | Error e -> Alcotest.failf "event line unparsable (%s): %s" e l)
    lines

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "fault: spec parse/describe" `Quick test_fault_parse;
        Alcotest.test_case "fault: deterministic, transient under retry" `Quick
          test_fault_determinism;
        Alcotest.test_case "scheduler: retries recover flaky tasks" `Quick
          test_scheduler_retries;
        Alcotest.test_case "scheduler: retries exhausted, params validated" `Quick
          test_scheduler_retries_exhausted;
        Alcotest.test_case "scheduler: deadline error reports its own clock" `Quick
          test_scheduler_deadline_consistent;
        Alcotest.test_case "cache: unique temps, fsync, orphan reaping" `Quick
          test_store_tmp_hygiene;
        Alcotest.test_case "cache: hostile bench names stay inside the root" `Quick
          test_sanitize_bench_name;
        Alcotest.test_case "cache: torn entry is a miss and heals" `Quick
          test_corrupt_entry_is_miss;
        Alcotest.test_case "campaign: faults + retries == undisturbed run" `Quick
          test_campaign_faults_with_retries;
        Alcotest.test_case "campaign: unretried faults fail loudly" `Quick
          test_campaign_faults_without_retries;
        Alcotest.test_case "campaign: checkpoint + resume is bit-identical" `Quick
          test_checkpoint_resume;
        Alcotest.test_case "manifest: JSON round-trip and legacy load" `Quick
          test_manifest_roundtrip;
        Alcotest.test_case "telemetry: JSON parser" `Quick test_telemetry_parse;
        Alcotest.test_case "telemetry: resilience event stream" `Quick
          test_resilience_events;
      ] );
  ]
