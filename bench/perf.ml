(* Perf microbenchmark entry point: `make perf` / `dune exec bench/perf.exe`.

   Knobs: PI_PERF_SCALE (default 4), PI_PERF_LAYOUTS (default 12),
   PI_PERF_BENCH (default 400.perlbench), PI_PERF_OUT (default
   BENCH_pipeline.json; "-" to skip the file).

   Exits nonzero when replay counts diverge from the legacy path or replay
   is slower than legacy, so `make check` can use it as a regression
   smoke. *)

let () =
  (* Tracing stays on while timing: the published perf numbers must include
     the instrumentation overhead they are gating (docs/PERF.md). *)
  Pi_obs.Span.set_enabled true;
  let scale = Interferometry.Knobs.env_int "PI_PERF_SCALE" 4 in
  let layouts = Interferometry.Knobs.env_int "PI_PERF_LAYOUTS" 12 in
  let bench =
    Option.value ~default:"400.perlbench" (Sys.getenv_opt "PI_PERF_BENCH")
  in
  let out = Option.value ~default:"BENCH_pipeline.json" (Sys.getenv_opt "PI_PERF_OUT") in
  let r = Interferometry.Perf_bench.run ~bench ~scale ~layouts () in
  print_endline (Interferometry.Perf_bench.summary r);
  if out <> "-" then begin
    Interferometry.Perf_bench.write_json ~path:out r;
    Printf.printf "wrote %s\n" out
  end;
  if not r.Interferometry.Perf_bench.identical then begin
    prerr_endline "FAIL: replay counts differ from the legacy pipeline";
    exit 1
  end;
  if r.Interferometry.Perf_bench.speedup < 1.0 then begin
    Printf.eprintf "FAIL: replay slower than legacy (%.2fx)\n"
      r.Interferometry.Perf_bench.speedup;
    exit 1
  end
