(* Perf microbenchmark entry point: `make perf` / `dune exec bench/perf.exe`.

   Knobs: PI_PERF_SCALE (default 4), PI_PERF_LAYOUTS (default 12),
   PI_PERF_BENCH (default 400.perlbench), PI_PERF_OUT (default
   BENCH_pipeline.json; "-" to skip the file), PI_SWEEP_SCALE (default 2 —
   the sweep benchmark is gated, so it runs at the scale whose fused/
   sequential ratio is most reproducible on a noisy box; independent of
   PI_PERF_SCALE), PI_SWEEP_OUT (default BENCH_sweep.json; "-" to skip the
   file), PI_SWEEP_GATE (minimum fused sweep speedup, default 0 = no gate;
   `make perf` passes 3), PI_CACHE_SWEEP_SCALE (default PI_SWEEP_SCALE),
   PI_CACHE_SWEEP_OUT (default BENCH_cache_sweep.json; "-" to skip),
   PI_CACHE_SWEEP_GATE (minimum fused cache-sweep speedup, default 0;
   `make perf` passes 3), PI_RECORDER_SCALE (default PI_SWEEP_SCALE),
   PI_RECORDER_OUT (default BENCH_recorder.json; "-" to skip),
   PI_RECORDER_GATE (maximum flight-recorder overhead percent, default 0
   = no gate; `make perf` passes 5), PI_SURROGATE_BENCH (default
   183.equake), PI_SURROGATE_SCALE (default PI_SWEEP_SCALE),
   PI_SURROGATE_OUT (default BENCH_surrogate.json; "-" to skip),
   PI_SURROGATE_GATE (minimum steered-sweep prune factor — full grid
   lanes over replayed lanes — default 0 = no prune gate; `make perf`
   passes 5; replayed-lane bit-identity and the 1% predicted-CPI
   tolerance are enforced regardless), PI_HISTORY_OUT (run-history
   ledger every result is appended to, default history.jsonl; "-" to
   skip — perf-smoke does) and PI_BUNDLE_OUT (a content-addressed run
   bundle pinning every BENCH_*.json artifact written this run, with the
   combined metric bag for `interferometry bundle diff`; default "-" =
   skip).

   Exits nonzero when replay counts diverge from the legacy path, replay is
   slower than legacy, either fused sweep diverges from its sequential
   study, either fused speedup misses its gate, or the flight recorder's
   overhead exceeds its gate — so `make check` can use it as a regression
   smoke. *)

let () =
  (* Tracing stays on while timing: the published perf numbers must include
     the instrumentation overhead they are gating (docs/PERF.md). The
     recorder benchmark manages the flag itself (its "off" leg is the
     point of comparison). *)
  Pi_obs.Span.set_enabled true;
  let scale = Interferometry.Knobs.env_int "PI_PERF_SCALE" 4 in
  let sweep_scale = Interferometry.Knobs.env_int "PI_SWEEP_SCALE" 2 in
  let cache_sweep_scale = Interferometry.Knobs.env_int "PI_CACHE_SWEEP_SCALE" sweep_scale in
  let recorder_scale = Interferometry.Knobs.env_int "PI_RECORDER_SCALE" sweep_scale in
  let surrogate_scale = Interferometry.Knobs.env_int "PI_SURROGATE_SCALE" sweep_scale in
  let layouts = Interferometry.Knobs.env_int "PI_PERF_LAYOUTS" 12 in
  let bench =
    Option.value ~default:"400.perlbench" (Sys.getenv_opt "PI_PERF_BENCH")
  in
  let out = Option.value ~default:"BENCH_pipeline.json" (Sys.getenv_opt "PI_PERF_OUT") in
  let sweep_out =
    Option.value ~default:"BENCH_sweep.json" (Sys.getenv_opt "PI_SWEEP_OUT")
  in
  let cache_sweep_out =
    Option.value ~default:"BENCH_cache_sweep.json" (Sys.getenv_opt "PI_CACHE_SWEEP_OUT")
  in
  let recorder_out =
    Option.value ~default:"BENCH_recorder.json" (Sys.getenv_opt "PI_RECORDER_OUT")
  in
  let surrogate_bench =
    Option.value ~default:"183.equake" (Sys.getenv_opt "PI_SURROGATE_BENCH")
  in
  let surrogate_out =
    Option.value ~default:"BENCH_surrogate.json" (Sys.getenv_opt "PI_SURROGATE_OUT")
  in
  let history_out =
    Option.value ~default:"history.jsonl" (Sys.getenv_opt "PI_HISTORY_OUT")
  in
  let gate_of name =
    match Sys.getenv_opt name with
    | None | Some "" -> 0.0
    | Some s -> (
        match float_of_string_opt s with
        | Some g when g >= 0.0 -> g
        | _ ->
            Pi_obs.Log.warn "%s=%s is not a float; gate disabled" name s;
            0.0)
  in
  let sweep_gate = gate_of "PI_SWEEP_GATE" in
  let cache_sweep_gate = gate_of "PI_CACHE_SWEEP_GATE" in
  let recorder_gate = gate_of "PI_RECORDER_GATE" in
  let surrogate_gate = gate_of "PI_SURROGATE_GATE" in
  let r = Interferometry.Perf_bench.run ~bench ~scale ~layouts () in
  print_endline (Interferometry.Perf_bench.summary r);
  if out <> "-" then begin
    Interferometry.Perf_bench.write_json ~path:out r;
    Printf.printf "wrote %s\n" out
  end;
  let s = Interferometry.Perf_bench.run_sweep ~bench ~scale:sweep_scale () in
  print_endline (Interferometry.Perf_bench.sweep_summary s);
  if sweep_out <> "-" then begin
    Interferometry.Perf_bench.write_sweep_json ~path:sweep_out s;
    Printf.printf "wrote %s\n" sweep_out
  end;
  let c = Interferometry.Perf_bench.run_cache_sweep ~bench ~scale:cache_sweep_scale () in
  print_endline (Interferometry.Perf_bench.cache_sweep_summary c);
  if cache_sweep_out <> "-" then begin
    Interferometry.Perf_bench.write_cache_sweep_json ~path:cache_sweep_out c;
    Printf.printf "wrote %s\n" cache_sweep_out
  end;
  let rc = Interferometry.Perf_bench.run_recorder ~bench ~scale:recorder_scale () in
  print_endline (Interferometry.Perf_bench.recorder_summary rc);
  if recorder_out <> "-" then begin
    Interferometry.Perf_bench.write_recorder_json ~path:recorder_out rc;
    Printf.printf "wrote %s\n" recorder_out
  end;
  let su =
    Interferometry.Perf_bench.run_surrogate ~bench:surrogate_bench
      ~scale:surrogate_scale ()
  in
  print_endline (Interferometry.Perf_bench.surrogate_summary su);
  if surrogate_out <> "-" then begin
    Interferometry.Perf_bench.write_surrogate_json ~path:surrogate_out su;
    Printf.printf "wrote %s\n" surrogate_out
  end;
  (* Every result joins the run-history ledger before the gates fire: a
     failing run's numbers are exactly the ones worth keeping. *)
  if history_out <> "-" then begin
    let digest label a_bench a_scale =
      Digest.to_hex (Digest.string (Printf.sprintf "%s:%s:%d" label a_bench a_scale))
    in
    let append kind_label a_bench a_scale metrics =
      Pi_obs.History.append ~path:history_out
        (Pi_obs.History.make ~kind:"perf" ~label:kind_label
           ~config_digest:(digest kind_label a_bench a_scale) metrics)
    in
    append "pipeline" bench scale (Interferometry.Perf_bench.history_metrics r);
    append "sweep" bench sweep_scale (Interferometry.Perf_bench.sweep_history_metrics s);
    append "cache_sweep" bench cache_sweep_scale
      (Interferometry.Perf_bench.cache_sweep_history_metrics c);
    append "recorder" bench recorder_scale
      (Interferometry.Perf_bench.recorder_history_metrics rc);
    append "surrogate" surrogate_bench surrogate_scale
      (Interferometry.Perf_bench.surrogate_history_metrics su);
    Printf.printf "appended 5 records to %s\n" history_out
  end;
  (match Sys.getenv_opt "PI_BUNDLE_OUT" with
  | None | Some "" | Some "-" -> ()
  | Some dir ->
      (* Pin this run's JSON artifacts so two perf runs can be verified and
         diffed bundle-to-bundle; metric names are prefixed per benchmark
         so the four bags coexist in one manifest. *)
      let outputs =
        List.filter_map
          (fun path ->
            if path = "-" then None
            else
              Some
                ( Filename.basename path,
                  In_channel.with_open_bin path In_channel.input_all ))
          [ out; sweep_out; cache_sweep_out; recorder_out; surrogate_out ]
      in
      let prefix p metrics = List.map (fun (k, v) -> (p ^ "_" ^ k, v)) metrics in
      let metrics =
        prefix "pipeline" (Interferometry.Perf_bench.history_metrics r)
        @ prefix "sweep" (Interferometry.Perf_bench.sweep_history_metrics s)
        @ prefix "cache_sweep"
            (Interferometry.Perf_bench.cache_sweep_history_metrics c)
        @ prefix "recorder"
            (Interferometry.Perf_bench.recorder_history_metrics rc)
        @ prefix "surrogate"
            (Interferometry.Perf_bench.surrogate_history_metrics su)
      in
      let module J = Pi_campaign.Telemetry in
      let config_args =
        [
          ("bench", J.String bench);
          ("scale", J.Int scale);
          ("sweep_scale", J.Int sweep_scale);
          ("layouts", J.Int layouts);
        ]
      in
      let config_digest =
        Digest.to_hex
          (Digest.string (Pi_campaign.Bundle.canonical_string (J.Obj config_args)))
      in
      let manifest =
        Pi_campaign.Bundle.write ~dir ~kind:"perf" ~label:bench ~config_digest
          ~config_args ~benches:[ bench ] ~n_layouts:layouts ~workers:1
          ~created_at:(Unix.time ()) ~metrics ~inputs:[] ~outputs ()
      in
      Printf.printf "bundle: %s (%d pinned artifacts)\n" dir
        (List.length manifest.Pi_campaign.Bundle.artifacts));
  if not r.Interferometry.Perf_bench.identical then begin
    prerr_endline "FAIL: replay counts differ from the legacy pipeline";
    exit 1
  end;
  if r.Interferometry.Perf_bench.speedup < 1.0 then begin
    Printf.eprintf "FAIL: replay slower than legacy (%.2fx)\n"
      r.Interferometry.Perf_bench.speedup;
    exit 1
  end;
  if not s.Interferometry.Perf_bench.sweep_identical then begin
    prerr_endline "FAIL: fused sweep diverges from the sequential study";
    exit 1
  end;
  if s.Interferometry.Perf_bench.sweep_speedup < sweep_gate then begin
    Printf.eprintf "FAIL: fused sweep speedup %.2fx below gate %.2fx\n"
      s.Interferometry.Perf_bench.sweep_speedup sweep_gate;
    exit 1
  end;
  if not c.Interferometry.Perf_bench.cache_identical then begin
    prerr_endline "FAIL: fused cache sweep diverges from the sequential study";
    exit 1
  end;
  if c.Interferometry.Perf_bench.cache_speedup < cache_sweep_gate then begin
    Printf.eprintf "FAIL: fused cache sweep speedup %.2fx below gate %.2fx\n"
      c.Interferometry.Perf_bench.cache_speedup cache_sweep_gate;
    exit 1
  end;
  if not rc.Interferometry.Perf_bench.rec_identical then begin
    prerr_endline "FAIL: sweep grid changed with the flight recorder on";
    exit 1
  end;
  if
    recorder_gate > 0.0
    && rc.Interferometry.Perf_bench.rec_overhead_percent > recorder_gate
  then begin
    Printf.eprintf "FAIL: flight-recorder overhead %.2f%% above gate %.2f%%\n"
      rc.Interferometry.Perf_bench.rec_overhead_percent recorder_gate;
    exit 1
  end;
  match Interferometry.Perf_bench.surrogate_failures ~gate:surrogate_gate su with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "FAIL: steered sweep: %s\n") failures;
      exit 1
