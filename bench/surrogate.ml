(* Surrogate-steered sweep gate: `make surrogate-smoke`.

   Runs only the steered-sweep benchmark — the full perf suite lives in
   bench/perf.exe — and enforces the same rules through the shared
   [Perf_bench.surrogate_failures]: replayed lanes bit-identical to the
   golden full fused study, every predicted lane within the CPI
   tolerance, and the prune factor at or above PI_SURROGATE_GATE.

   Knobs (as in bench/perf.ml): PI_SURROGATE_BENCH (default 183.equake),
   PI_SURROGATE_SCALE (default 1 — this is a smoke, not a timing),
   PI_SURROGATE_GATE (default 5), PI_SURROGATE_OUT (default "-" = no
   artifact; `make perf` owns BENCH_surrogate.json). *)

let () =
  Pi_obs.Span.set_enabled true;
  let bench =
    Option.value ~default:"183.equake" (Sys.getenv_opt "PI_SURROGATE_BENCH")
  in
  let scale = Interferometry.Knobs.env_int "PI_SURROGATE_SCALE" 1 in
  let out = Option.value ~default:"-" (Sys.getenv_opt "PI_SURROGATE_OUT") in
  let gate =
    match Sys.getenv_opt "PI_SURROGATE_GATE" with
    | None | Some "" -> 5.0
    | Some s -> (
        match float_of_string_opt s with
        | Some g when g >= 0.0 -> g
        | _ ->
            Pi_obs.Log.warn "PI_SURROGATE_GATE=%s is not a float; using 5" s;
            5.0)
  in
  let r = Interferometry.Perf_bench.run_surrogate ~bench ~scale () in
  print_endline (Interferometry.Perf_bench.surrogate_summary r);
  if out <> "-" then begin
    Interferometry.Perf_bench.write_surrogate_json ~path:out r;
    Printf.printf "wrote %s\n" out
  end;
  match Interferometry.Perf_bench.surrogate_failures ~gate r with
  | [] -> print_endline "surrogate-smoke OK: steered sweep pruned, bounded, bit-identical where replayed"
  | failures ->
      List.iter (Printf.eprintf "FAIL: steered sweep: %s\n") failures;
      exit 1
