(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation. Run with no arguments for everything, or name the artifacts:

     dune exec bench/main.exe -- fig1 fig2 fig3 fig4 fig5 fig6 table1 \
                                 significance fig7 fig8 headline ablations micro

   Environment knobs:
     PI_LAYOUTS     reorderings per benchmark     (default 40; paper: 100+)
     PI_SCALE       workload scale                (default 8)
     PI_SEED        master seed                   (default 1)
     PI_JOBS        campaign worker domains       (default: recommended count)
     PI_CACHE_DIR   campaign observation cache    (default: no cache)
     PI_LOG         log verbosity                 (default info here; quiet mutes)
     PI_TRACE_OUT   Chrome trace artifact         (default BENCH_trace.json; - skips)
     PI_METRICS_OUT metrics scrape artifact       (default BENCH_metrics.prom; - skips)

   The run starts with a parallel campaign over the 2006 suite (the
   `campaign` artifact): every dataset the figures need is computed on
   worker domains and the per-figure code reuses it from the cache.

   Expected paper values are quoted in each section header; absolute numbers
   differ (our substrate is a model, not the authors' Xeon testbed) but the
   shapes — who wins, rough factors, where significance fails, where
   linearity bends — should match. *)

module E = Interferometry.Experiment
module Model = Interferometry.Model
module Blame = Interferometry.Blame
module Significance = Interferometry.Significance
module Predict = Interferometry.Predict
module Spec = Pi_workloads.Spec
module Bench_def = Pi_workloads.Bench
module Linreg = Pi_stats.Linreg

let env_int = Interferometry.Knobs.env_int

(* The harness narrates by default; PI_LOG=quiet (or warn) mutes the
   narration without touching the figures on stdout. *)
let () =
  if Sys.getenv_opt "PI_LOG" = None then Pi_obs.Log.set_level (Some Pi_obs.Log.Info)

let n_layouts = env_int "PI_LAYOUTS" 40
let scale = env_int "PI_SCALE" 8
let master_seed = env_int "PI_SEED" 1

let config = { E.default_config with scale; master_seed }

let section title expectation =
  Printf.printf "\n==== %s ====\n" title;
  Printf.printf "  [paper: %s]\n\n%!" expectation

let timed name f =
  let t0 = Pi_obs.Clock.now () in
  let result = f () in
  Printf.printf "  (%s took %.1fs)\n%!" name (Pi_obs.Clock.now () -. t0);
  result

(* Datasets are shared between figures; prepare/observe each benchmark once. *)
let dataset_cache : (string, E.dataset) Hashtbl.t = Hashtbl.create 32

let dataset ?(cfg = config) (bench : Bench_def.t) =
  let key = bench.Bench_def.name ^ if cfg.E.heap_random then "+heap" else "" in
  match Hashtbl.find_opt dataset_cache key with
  | Some d -> d
  | None ->
      let d = E.run ~config:cfg bench ~n_layouts in
      Hashtbl.replace dataset_cache key d;
      d

let model_cache : (string, Model.t) Hashtbl.t = Hashtbl.create 32

let model bench =
  match Hashtbl.find_opt model_cache bench.Bench_def.name with
  | Some m -> m
  | None ->
      let m = Model.fit (dataset bench) in
      Hashtbl.replace model_cache bench.Bench_def.name m;
      m

(* ------------------------------------------------------------------ *)

(* Suite-wide parallel measurement: one observation job per (benchmark,
   seed) drained by worker domains, optionally backed by the on-disk
   observation cache. The datasets land in [dataset_cache] so every later
   figure reuses them — the parallel path feeds the whole harness. *)
let campaign () =
  section "Campaign: parallel measurement of the 2006 suite"
    "infrastructure, not in the paper; identical observations to the sequential path";
  let jobs = env_int "PI_JOBS" (Pi_campaign.Scheduler.default_jobs ()) in
  let cache_dir = Sys.getenv_opt "PI_CACHE_DIR" in
  let retries = env_int "PI_RETRIES" 0 in
  let fault =
    Pi_campaign.Fault.of_env
      ~warn:(fun msg -> Printf.eprintf "campaign: ignoring PI_FAULT: %s\n%!" msg)
      ()
  in
  let result =
    timed
      (Printf.sprintf "campaign over %d domain(s)" jobs)
      (fun () ->
        Pi_campaign.Campaign.run ~config ~jobs ?cache_dir ~retries ?fault ~n_layouts
          (Spec.all_2006 ()))
  in
  print_string (Pi_campaign.Manifest.summary_table result.Pi_campaign.Campaign.manifest);
  List.iter
    (fun (o : Pi_campaign.Campaign.bench_outcome) ->
      Option.iter
        (fun d -> Hashtbl.replace dataset_cache o.Pi_campaign.Campaign.bench.Bench_def.name d)
        o.Pi_campaign.Campaign.dataset)
    result.Pi_campaign.Campaign.outcomes

let fig1 () =
  section "Figure 1: CPI variation under code reordering (violin plots)"
    "some benchmarks vary by several percent, FP stream codes barely at all";
  let series =
    List.map
      (fun bench ->
        let d = dataset bench in
        ( bench.Bench_def.name,
          Pi_stats.Descriptive.percent_difference_from_mean (E.cpis d) ))
      (Spec.all_2006 ())
  in
  print_endline
    (Pi_plot.Violin.render ~width:100 ~title:"% difference from mean CPI over reorderings"
       ~x_label:"% difference from average CPI" series)

let scatter_for bench =
  let d = dataset bench in
  let m = model bench in
  let points = Array.map2 (fun x y -> (x, y)) (E.mpkis d) (E.cpis d) in
  print_endline
    (Pi_plot.Scatter.render ~width:90 ~height:22
       ~title:
         (Printf.sprintf "%s: CPI vs MPKI (o data, * fit, : 95%% CI, . 95%% PI)  %s"
            bench.Bench_def.name
            (Format.asprintf "%a" Linreg.pp m.Model.regression))
       ~x_label:"branch mispredictions per kilo-instruction (MPKI)" ~y_label:"CPI"
       ~line:(Pi_plot.Scatter.regression_line m.Model.regression)
       ~bands:
         [
           Pi_plot.Scatter.confidence_band m.Model.regression;
           Pi_plot.Scatter.prediction_band m.Model.regression;
         ]
       points)

let fig2 () =
  section "Figure 2: CPI vs MPKI with regression + intervals"
    "perlbench: CPI = 0.02799*MPKI + 0.51667; omnetpp intercept ~1.90";
  scatter_for (Spec.find "400.perlbench");
  scatter_for (Spec.find "471.omnetpp")

let fig3 () =
  section "Figure 3: CPI vs cache misses under heap randomization (454.calculix)"
    "CPI linear in both L1 and L2 misses with tight confidence bands";
  (* The cache experiment runs the benchmark longer (several sweeps over the
     stiffness blocks) so steady-state conflict behaviour, not cold misses,
     dominates — the analogue of the paper's full-length ref runs. *)
  let cfg =
    { config with E.heap_random = true; scale = 3 * scale; budget_blocks = 700_000 }
  in
  let d = dataset ~cfg (Spec.find "454.calculix") in
  let cpis = E.cpis d in
  let plot name xs =
    let reg = Linreg.fit xs cpis in
    let points = Array.map2 (fun x y -> (x, y)) xs cpis in
    print_endline
      (Pi_plot.Scatter.render ~width:90 ~height:20
         ~title:
           (Printf.sprintf "454.calculix: CPI vs %s  %s" name
              (Format.asprintf "%a" Linreg.pp reg))
         ~x_label:(name ^ " per kilo-instruction") ~y_label:"CPI"
         ~line:(Pi_plot.Scatter.regression_line reg)
         ~bands:[ Pi_plot.Scatter.confidence_band reg; Pi_plot.Scatter.prediction_band reg ]
         points)
  in
  plot "L1D misses" (E.l1d_mpkis d);
  plot "L2 misses" (E.l2_mpkis d)

(* The simulator study is benchmark x 147 pipeline runs: cache it too. *)
let study_cache : (string, Pi_uarch.Sweep.study) Hashtbl.t = Hashtbl.create 32

let study (bench : Bench_def.t) =
  match Hashtbl.find_opt study_cache bench.Bench_def.name with
  | Some s -> s
  | None ->
      let prepared = E.prepare ~config bench in
      let placement = Pi_layout.Placement.natural prepared.E.program in
      let s =
        Pi_uarch.Sweep.run_study ~base:config.E.machine
          ~warmup_blocks:prepared.E.warmup_blocks ~benchmark:bench.Bench_def.name
          prepared.E.trace placement
      in
      Hashtbl.replace study_cache bench.Bench_def.name s;
      s

let fig4 () =
  section
    "Figure 4: % error of linear extrapolation to perfect and L-TAGE CPI (145 predictor configs)"
    "avg 1.32% (perfect), worst 252.eon 6.0% / 178.galgel 7.5%; L-TAGE avg <0.3%, max <1%";
  let studies =
    timed "145-config sweep over 31 benchmarks" (fun () ->
        List.map (fun b -> study b) (Spec.simulation_suite ()))
  in
  let sorted =
    List.sort
      (fun (a : Pi_uarch.Sweep.study) b -> compare a.perfect_error_percent b.perfect_error_percent)
      studies
  in
  Printf.printf "%-16s %18s %18s\n" "Benchmark" "perfect err %" "L-TAGE err %";
  List.iter
    (fun (s : Pi_uarch.Sweep.study) ->
      Printf.printf "%-16s %18.2f %18.2f\n" s.benchmark s.perfect_error_percent
        s.ltage_error_percent)
    sorted;
  let avg f =
    List.fold_left (fun acc s -> acc +. f s) 0.0 studies /. float_of_int (List.length studies)
  in
  Printf.printf "%-16s %18.2f %18.2f\n" "Average"
    (avg (fun s -> s.Pi_uarch.Sweep.perfect_error_percent))
    (avg (fun s -> s.Pi_uarch.Sweep.ltage_error_percent))

let fig5 () =
  section "Figure 5: MPKI vs normalized CPI regression lines"
    "(a) astar/bzip2/sjeng strongly linear; (b) hmmer/eon/galgel visibly less so";
  let panel title names =
    Printf.printf "-- %s --\n" title;
    List.iter
      (fun name ->
        let s = study (Spec.find name) in
        let points =
          Array.map
            (fun (p : Pi_uarch.Sweep.point) -> (p.mpki, p.cpi /. s.perfect_cpi))
            s.points
        in
        let norm_reg = Linreg.fit (Array.map fst points) (Array.map snd points) in
        print_endline
          (Pi_plot.Scatter.render ~width:90 ~height:18
             ~title:
               (Printf.sprintf
                  "%s: normalized CPI vs MPKI (X = perfect at (0,1)); fit intercept %.3f"
                  name norm_reg.Linreg.intercept)
             ~x_label:"MPKI" ~y_label:"CPI/perfect"
             ~line:(Pi_plot.Scatter.regression_line norm_reg)
             ~extra_points:[ (0.0, 1.0, 'X') ] points))
      names
  in
  panel "(a) highly linear" [ "473.astar"; "401.bzip2"; "458.sjeng" ];
  panel "(b) less linear" [ "456.hmmer"; "252.eon"; "178.galgel" ]

let fig6 () =
  section "Figure 6: cumulative r^2 per event + combined model"
    "on average 27% of CPI variance from branch mispredictions; 462.libquantum 84.2%";
  let attributions = List.map (fun b -> Blame.attribute (dataset b)) (Spec.all_2006 ()) in
  let rows =
    List.map
      (fun (a : Blame.t) -> (a.Blame.benchmark, [ a.Blame.r2_mpki; a.Blame.r2_l1i; a.Blame.r2_l2 ]))
      attributions
    @ [
        (let avg = Blame.average attributions in
         (avg.Blame.benchmark, [ avg.Blame.r2_mpki; avg.Blame.r2_l1i; avg.Blame.r2_l2 ]));
      ]
  in
  print_endline
    (Pi_plot.Bars.render_stacked ~width:100 ~title:"cumulative r^2 (stacked) per event"
       ~segment_glyphs:[ 'B'; 'I'; '2' ]
       ~legend:[ "r2 MPKI"; "r2 L1I"; "r2 L2" ] rows);
  print_endline Blame.header;
  List.iter (fun a -> print_endline (Blame.row a)) attributions;
  print_endline (Blame.row (Blame.average attributions))

let significance_experiment () =
  section "Significance (Sections 4.6/6.4): t-test on CPI~MPKI per benchmark"
    "20 of 23 benchmarks reject the null hypothesis at p <= 0.05";
  print_endline Significance.header;
  (* The paper samples in batches (100 -> 200 -> 300) until the null can be
     rejected; we batch by PI_LAYOUTS. The grown datasets are kept so later
     figures reuse them. *)
  let verdicts =
    List.map
      (fun bench ->
        let d0 = dataset bench in
        let v0 = Significance.test d0 in
        let v, d =
          if v0.Significance.significant then (v0, d0)
          else
            let rec grow d =
              let n = Array.length d.E.observations in
              if n >= 3 * n_layouts then (Significance.test d, d)
              else
                let d = E.extend d ~n_layouts:(n + n_layouts) in
                let v = Significance.test d in
                if v.Significance.significant then (v, d) else grow d
            in
            grow d0
        in
        Hashtbl.replace dataset_cache bench.Bench_def.name d;
        print_endline (Significance.row v);
        v)
      (Spec.all_2006 ())
  in
  let significant =
    List.length (List.filter (fun v -> v.Significance.significant) verdicts)
  in
  Printf.printf "\n%d of %d benchmarks significant at p <= 0.05\n" significant
    (List.length verdicts);
  let mismatches =
    List.filter
      (fun ((bench : Bench_def.t), (v : Significance.verdict)) ->
        bench.Bench_def.expect_significant <> v.Significance.significant)
      (List.combine (Spec.all_2006 ()) verdicts)
  in
  if mismatches = [] then print_endline "all verdicts match the paper's expectations"
  else
    List.iter
      (fun ((bench : Bench_def.t), (v : Significance.verdict)) ->
        Printf.printf "NOTE: %s expected %s, measured %s\n" bench.Bench_def.name
          (if bench.Bench_def.expect_significant then "significant" else "not significant")
          (if v.Significance.significant then "significant" else "not significant"))
      mismatches

let table1 () =
  section "Table 1: least-squares models (slope, intercept, 95% PI at MPKI=0)"
    "slopes 0.016..0.041 for branch-sensitive codes, degenerate for zeusmp/GemsFDTD";
  print_endline Model.table1_header;
  List.iter (fun bench -> print_endline (Model.table1_row (model bench))) (Spec.table1_2006 ())

let evaluations_cache : (string * Predict.evaluation list) list ref = ref []

let evaluations () =
  if !evaluations_cache = [] then
    evaluations_cache :=
      timed "Pin predictor sweeps" (fun () ->
          List.map
            (fun bench ->
              (bench.Bench_def.name, Predict.evaluate (dataset bench) (model bench)))
            (Spec.table1_2006 ()));
  !evaluations_cache

let fig7 () =
  section "Figure 7: MPKI of real and simulated predictors"
    "real 6.306 avg; GAs-8KB 5.729; GAs-16KB 5.542; L-TAGE 3.995 (37% below real)";
  let evals = evaluations () in
  let names =
    match evals with
    | (_, rows) :: _ -> List.map (fun e -> e.Predict.predictor) rows
    | [] -> []
  in
  Printf.printf "%-16s" "Benchmark";
  List.iter (fun n -> Printf.printf " %12s" n) names;
  print_newline ();
  List.iter
    (fun (bench, rows) ->
      Printf.printf "%-16s" bench;
      List.iter (fun e -> Printf.printf " %12.3f" e.Predict.mean_mpki) rows;
      print_newline ())
    evals;
  let summary = Predict.summarize_suite evals in
  Printf.printf "%-16s %12.3f" "Average" summary.Predict.real_mpki;
  List.iter (fun (_, mpki, _, _) -> Printf.printf " %12.3f" mpki) summary.Predict.rows;
  Printf.printf " %12.3f\n" 0.0

let fig8 () =
  section "Figure 8: predicted CPI per predictor with 95% intervals"
    "error bars: prediction intervals for simulated predictors, confidence for real";
  List.iter
    (fun (bench, rows) ->
      Printf.printf "-- %s --\n" bench;
      print_endline
        (Pi_plot.Bars.render_intervals ~width:100
           (List.map
              (fun (e : Predict.evaluation) ->
                ( e.Predict.predictor,
                  e.Predict.cpi.Linreg.lower,
                  e.Predict.cpi.Linreg.estimate,
                  e.Predict.cpi.Linreg.upper ))
              rows)))
    (evaluations ())

let headline () =
  section "Headline estimates (Sections 1.4 and 7.2)"
    "perlbench perfect: -26.0% +- 4.2%; suite: real 1.387+-0.012 vs perfect 1.223+-0.061 (avg 11.8%); L-TAGE -37% MPKI -> -4.8% CPI";
  let perl = Spec.find "400.perlbench" in
  let m = model perl in
  let d = dataset perl in
  let mean_mpki = Pi_stats.Descriptive.mean (E.mpkis d) in
  let mean_cpi = Pi_stats.Descriptive.mean (E.cpis d) in
  let perfect = m.Model.perfect_prediction in
  Printf.printf "400.perlbench: measured CPI %.3f at MPKI %.2f\n" mean_cpi mean_mpki;
  Printf.printf "  perfect prediction CPI %.3f [%.3f, %.3f] -> improvement %.1f%%\n"
    perfect.Linreg.estimate perfect.Linreg.lower perfect.Linreg.upper
    (Model.improvement_percent m ~from_mpki:mean_mpki ~to_mpki:0.0);
  let half = Model.predict_cpi m ~mpki:(mean_mpki /. 2.0) in
  Printf.printf "  halving MPKI (%.2f -> %.2f): CPI %.3f [%.3f, %.3f], improvement %.1f%%\n"
    mean_mpki (mean_mpki /. 2.0) half.Linreg.estimate half.Linreg.lower half.Linreg.upper
    (Model.improvement_percent m ~from_mpki:mean_mpki ~to_mpki:(mean_mpki /. 2.0));
  (match Model.mpki_reduction_for_cpi_gain m ~at_mpki:mean_mpki ~gain_percent:10.0 with
  | Some reduction ->
      Printf.printf "  a 10%% CPI improvement requires a %.0f%% misprediction reduction\n"
        reduction
  | None -> print_endline "  (slope non-positive; no reduction estimate)");
  let summary = Predict.summarize_suite (evaluations ()) in
  Printf.printf "\nSuite (20 benchmarks): real CPI %.3f +- %.3f at %.3f MPKI\n"
    summary.Predict.real_cpi summary.Predict.real_cpi_half_width summary.Predict.real_mpki;
  List.iter
    (fun (name, mpki, cpi, half_width) ->
      Printf.printf "  %-10s MPKI %6.3f (%+.1f%%)  CPI %.3f +- %.3f (improvement %.1f%%)\n"
        name mpki
        (100.0 *. (mpki -. summary.Predict.real_mpki) /. summary.Predict.real_mpki)
        cpi half_width
        (100.0 *. (summary.Predict.real_cpi -. cpi) /. summary.Predict.real_cpi))
    summary.Predict.rows

let samples () =
  section "Number of samples (Section 6.3) + power analysis"
    "most benchmarks reject the null within 100 samples; some need 200, a few 300";
  print_endline Interferometry.Power.header;
  let rows =
    Interferometry.Power.analyze ~batch:n_layouts ~max_samples:(3 * n_layouts) ~config
      (Spec.all_2006 ())
  in
  List.iter (fun r -> print_endline (Interferometry.Power.row_to_string r)) rows;
  Printf.printf
    "\n(weakest detectable |r| at n=%d with 80%% power: %.2f; at n=%d: %.2f)\n" n_layouts
    (Interferometry.Power.detectable_r n_layouts)
    (3 * n_layouts)
    (Interferometry.Power.detectable_r (3 * n_layouts))

let machines () =
  section "Machine comparison (Section 1.5: betting on future microarchitectures)"
    "deeper pipelines (NetBurst-like) make each misprediction costlier: steeper Table-1 slopes";
  Printf.printf "%-16s %16s %16s %12s\n" "Benchmark" "Xeon-like slope" "NetBurst slope" "ratio";
  let benches = [ "400.perlbench"; "456.hmmer"; "445.gobmk"; "462.libquantum"; "401.bzip2" ] in
  let ratios =
    List.map
      (fun name ->
        let bench = Spec.find name in
        let prepared = E.prepare ~config bench in
        let slope machine =
          let plan = Pi_uarch.Replay.compile machine prepared.E.trace in
          let n = min 30 n_layouts in
          let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
          for i = 0 to n - 1 do
            let placement = Pi_layout.Placement.make prepared.E.program ~seed:(i + 1) in
            let c = Pi_uarch.Replay.run ~warmup_blocks:prepared.E.warmup_blocks plan placement in
            xs.(i) <- Pi_uarch.Pipeline.mpki c;
            ys.(i) <- Pi_uarch.Pipeline.cpi c
          done;
          (Linreg.fit xs ys).Linreg.slope
        in
        let xeon = slope config.E.machine in
        let netburst = slope Pi_uarch.Machine.netburst_like in
        Printf.printf "%-16s %16.4f %16.4f %12.2f\n" name xeon netburst (netburst /. xeon);
        netburst /. xeon)
      benches
  in
  Printf.printf "mean slope ratio: %.2fx (mispredict penalty ratio configured: %.2fx)\n"
    (List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios))
    (Pi_uarch.Machine.netburst_like.Pi_uarch.Pipeline.penalties.Pi_uarch.Pipeline.mispredict
    /. config.E.machine.Pi_uarch.Pipeline.penalties.Pi_uarch.Pipeline.mispredict)

let simpoints () =
  section "SimPoint phase analysis (Section 3 methodology)"
    "the MASE study simulates one simpoint per benchmark; we validate the machinery";
  Printf.printf "%-16s %10s %12s %12s %8s\n" "Benchmark" "full CPI" "simpoint CPI" "intervals" "err %%";
  List.iter
    (fun name ->
      let bench = Spec.find name in
      let prepared = E.prepare ~config bench in
      let trace = prepared.E.trace in
      let placement = Pi_layout.Placement.make prepared.E.program ~seed:1 in
      let metric t ~warmup_blocks =
        Pi_uarch.Pipeline.cpi
          (Pi_uarch.Pipeline.run ~warmup_blocks config.E.machine t placement)
      in
      let interval_blocks = max 1 (Pi_isa.Trace.blocks_executed trace / 10) in
      let full = metric trace ~warmup_blocks:prepared.E.warmup_blocks in
      let estimate =
        Pi_isa.Phases.estimate metric trace ~interval_blocks
          ~warmup_blocks:(3 * interval_blocks) ~k:4 ()
      in
      Printf.printf "%-16s %10.4f %12.4f %12d %8.2f\n" name full estimate
        ((Pi_isa.Trace.blocks_executed trace + interval_blocks - 1) / interval_blocks)
        (100.0 *. Float.abs (estimate -. full) /. full))
    [ "470.lbm"; "434.zeusmp"; "456.hmmer"; "400.perlbench" ];
  print_endline
    "(long-history predictor state needs long warmup; streaming codes estimate tightly)"

let ablations () =
  section "Ablations (DESIGN.md section 4)" "design-choice sanity checks, not in the paper";
  (* 1. Wrong-path side effects drive the non-linearity of eon. *)
  let bench = Spec.find "252.eon" in
  let prepared = E.prepare ~config bench in
  let placement = Pi_layout.Placement.natural prepared.E.program in
  let with_wp =
    Pi_uarch.Sweep.run_study ~base:config.E.machine ~warmup_blocks:prepared.E.warmup_blocks
      ~benchmark:"252.eon" prepared.E.trace placement
  in
  let without_wp =
    Pi_uarch.Sweep.run_study
      ~base:(Pi_uarch.Machine.without_wrong_path config.E.machine)
      ~warmup_blocks:prepared.E.warmup_blocks ~benchmark:"252.eon" prepared.E.trace placement
  in
  Printf.printf
    "wrong-path effects on 252.eon perfect-extrapolation error: %.2f%% with, %.2f%% without\n"
    with_wp.Pi_uarch.Sweep.perfect_error_percent
    without_wp.Pi_uarch.Sweep.perfect_error_percent;
  (* 2. Median-of-5 protocol vs a single noisy run: residual noise around
     the per-layout exact CPI. *)
  let perl = Spec.find "400.perlbench" in
  let prepared = E.prepare ~config perl in
  let spread protocol =
    let residuals =
      Array.init 24 (fun i ->
          let counts = E.exact_counts prepared ~seed:(i + 1) in
          let exact = Pi_uarch.Counters.ideal counts in
          let m =
            if protocol then Pi_uarch.Counters.measure ~seed:(1000 + i) counts
            else Pi_uarch.Counters.measure_single_run ~seed:(1000 + i) counts
          in
          m.Pi_uarch.Counters.cpi -. exact.Pi_uarch.Counters.cpi)
    in
    Pi_stats.Descriptive.stddev residuals
  in
  Printf.printf
    "measurement noise on perlbench CPI: median-of-5 sd %.5f vs single-run sd %.5f\n"
    (spread true) (spread false);
  (* 3. Heap randomization is what elicits cache-miss variance (calculix). *)
  let ccx = Spec.find "454.calculix" in
  let r2_of heap_random =
    let cfg = { config with E.heap_random } in
    let d = E.run ~config:cfg ccx ~n_layouts:(min 30 n_layouts) in
    Pi_stats.Correlation.r_squared (E.l1d_mpkis d) (E.cpis d)
  in
  Printf.printf "calculix r^2(CPI, L1D misses): randomized heap %.3f vs bump allocator %.3f\n"
    (r2_of true) (r2_of false);
  (* 4. ITTAGE vs BTB for indirect branches (perlbench dispatch loop). *)
  let prepared = E.prepare ~config perl in
  let placement = Pi_layout.Placement.make prepared.E.program ~seed:1 in
  let indirect_misses make_indirect =
    let cfg = Pi_uarch.Machine.with_indirect config.E.machine ~name:"x" make_indirect in
    let c = Pi_uarch.Pipeline.run ~warmup_blocks:prepared.E.warmup_blocks cfg prepared.E.trace placement in
    c.Pi_uarch.Pipeline.indirect_mispredicts
  in
  Printf.printf "perlbench indirect mispredicts: BTB %d vs ITTAGE %d\n"
    (indirect_misses (fun () -> Pi_uarch.Indirect.btb ()))
    (indirect_misses (fun () -> Pi_uarch.Indirect.ittage ()));
  (* 5. A trace cache mutes the L1I interferometry signal (gcc). *)
  let gcc = Spec.find "403.gcc" in
  let prepared_gcc = E.prepare ~config gcc in
  let l1i_sd machine =
    let plan = Pi_uarch.Replay.compile machine prepared_gcc.E.trace in
    let values =
      Array.init 15 (fun i ->
          let placement = Pi_layout.Placement.make prepared_gcc.E.program ~seed:(i + 1) in
          let c = Pi_uarch.Replay.run ~warmup_blocks:prepared_gcc.E.warmup_blocks plan placement in
          Pi_uarch.Pipeline.l1i_mpki c)
    in
    Pi_stats.Descriptive.stddev values
  in
  Printf.printf "gcc L1I MPKI spread over layouts: %.4f without trace cache, %.4f with\n"
    (l1i_sd config.E.machine)
    (l1i_sd (Pi_uarch.Machine.with_trace_cache config.E.machine));
  (* 6. Stride prefetcher collapses streaming L2 demand misses (bwaves). *)
  let bwaves = Spec.find "410.bwaves" in
  let prepared_bw = E.prepare ~config bwaves in
  let placement_bw = Pi_layout.Placement.make prepared_bw.E.program ~seed:1 in
  let l2_mpki machine =
    Pi_uarch.Pipeline.l2_mpki
      (Pi_uarch.Pipeline.run ~warmup_blocks:prepared_bw.E.warmup_blocks machine
         prepared_bw.E.trace placement_bw)
  in
  Printf.printf "bwaves L2 demand MPKI: %.2f without prefetcher, %.2f with\n"
    (l2_mpki config.E.machine)
    (l2_mpki (Pi_uarch.Machine.with_data_prefetcher config.E.machine));
  (* 7. Profile-guided placement sits at the favourable edge of the random
     layout distribution (the paper's Section 2.2 counterfactual). *)
  let optimized_code = Pi_layout.Profile_layout.layout prepared_gcc.E.trace in
  let optimized_placement =
    {
      Pi_layout.Placement.seed = -1;
      code = optimized_code;
      data = Pi_layout.Data_layout.bump prepared_gcc.E.program;
    }
  in
  let gcc_plan = Pi_uarch.Replay.compile config.E.machine prepared_gcc.E.trace in
  let cpi_of placement =
    Pi_uarch.Pipeline.cpi
      (Pi_uarch.Replay.run ~warmup_blocks:prepared_gcc.E.warmup_blocks gcc_plan placement)
  in
  let random_cpis =
    Array.init 20 (fun i -> cpi_of (Pi_layout.Placement.make prepared_gcc.E.program ~seed:(i + 1)))
  in
  let optimized_cpi = cpi_of optimized_placement in
  let better = Array.length (Array.of_list (List.filter (fun c -> c > optimized_cpi) (Array.to_list random_cpis))) in
  Printf.printf
    "gcc profile-guided layout CPI %.4f beats %d of 20 random layouts (random mean %.4f)\n"
    optimized_cpi better
    (Pi_stats.Descriptive.mean random_cpis);
  (* 8. Bootstrap vs parametric intervals for the perlbench model. *)
  let d = dataset perl in
  let m = model perl in
  let slope_bs, intercept_bs =
    Pi_stats.Bootstrap.regression_intervals ~seed:7 (E.mpkis d) (E.cpis d)
  in
  Printf.printf
    "perlbench intercept: parametric 95%% PI [%.3f, %.3f], bootstrap CI [%.3f, %.3f] (slope bootstrap [%.4f, %.4f])\n"
    m.Model.perfect_prediction.Linreg.lower m.Model.perfect_prediction.Linreg.upper
    intercept_bs.Pi_stats.Bootstrap.lower intercept_bs.Pi_stats.Bootstrap.upper
    slope_bs.Pi_stats.Bootstrap.lower slope_bs.Pi_stats.Bootstrap.upper;
  (* 9. ASLR (Section 5.5): the paper pins address-space randomization so
     every placement is exactly reproducible from its PRNG key. Enabling
     our seeded ASLR model shows what it adds: extra data-placement
     variance on top of the allocator's. *)
  let ccx_prepared =
    E.prepare ~config:{ config with E.scale = 3 * scale; budget_blocks = 700_000; heap_random = true } ccx
  in
  let ccx_plan = Pi_uarch.Replay.compile config.E.machine ccx_prepared.E.trace in
  let cache_r2 ~aslr =
    let n = min 20 n_layouts in
    let l1ds = Array.make n 0.0 and cpis = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let placement =
        Pi_layout.Placement.make ~heap_random:true ~aslr ccx_prepared.E.program ~seed:(i + 1)
      in
      let c = Pi_uarch.Replay.run ~warmup_blocks:ccx_prepared.E.warmup_blocks ccx_plan placement in
      l1ds.(i) <- Pi_uarch.Pipeline.l1d_mpki c;
      cpis.(i) <- Pi_uarch.Pipeline.cpi c
    done;
    (Pi_stats.Correlation.r_squared l1ds cpis, Pi_stats.Descriptive.stddev cpis)
  in
  let r2_off, sd_off = cache_r2 ~aslr:false in
  let r2_on, sd_on = cache_r2 ~aslr:true in
  Printf.printf
    "calculix ASLR off (paper's setup): r^2(CPI,L1D) %.3f, CPI sd %.4f; ASLR on: %.3f, %.4f\n"
    r2_off sd_off r2_on sd_on;
  Printf.printf
    "  (ASLR adds placement variance beyond the allocator's control; the paper pins it\n     \   so each executable's addresses are fully determined by the PRNG key)\n";
  (* 10. Cache interferometry (the paper's future work): hypothetical cache
     geometries for the Figure-3 benchmark. *)
  let ccx_cfg = { config with E.heap_random = true; scale = 3 * scale; budget_blocks = 700_000 } in
  let ccx_ds = E.run ~config:ccx_cfg ccx ~n_layouts:(min 30 n_layouts) in
  let mm = Interferometry.Cache_model.fit ccx_ds in
  print_endline Interferometry.Cache_model.header;
  List.iter
    (fun e -> print_endline (Interferometry.Cache_model.row e))
    (Interferometry.Cache_model.evaluate ccx_ds mm)

let micro () =
  section "Bechamel micro-benchmarks" "throughput of the core components";
  let open Bechamel in
  let trace =
    let p = (Spec.find "400.perlbench").Bench_def.build ~scale:2 in
    Pi_layout.Run_limiter.trace p ~budget_blocks:20_000
  in
  let placement = Pi_layout.Placement.natural trace.Pi_isa.Trace.program in
  let predictor_test name make =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Pi_pin.Bp_sim.run trace placement.Pi_layout.Placement.code [ make ])))
  in
  let tests =
    [
      predictor_test "pin:bimodal" (fun () -> Pi_uarch.Bimodal.create ~entries_log2:12);
      predictor_test "pin:gshare" (fun () ->
          Pi_uarch.Gshare.create ~entries_log2:14 ~history_bits:12);
      predictor_test "pin:hybrid" Pi_uarch.Hybrid.xeon_like;
      predictor_test "pin:ltage" (fun () -> Pi_uarch.Ltage.create ());
      Test.make ~name:"pipeline:run"
        (Staged.stage (fun () ->
             ignore (Pi_uarch.Machine.run Pi_uarch.Machine.xeon_e5440 trace placement)));
      Test.make ~name:"pipeline:legacy"
        (Staged.stage (fun () ->
             ignore (Pi_uarch.Pipeline.run_unoptimized Pi_uarch.Machine.xeon_e5440 trace placement)));
      Test.make ~name:"pipeline:compile"
        (Staged.stage (fun () ->
             ignore (Pi_uarch.Replay.compile Pi_uarch.Machine.xeon_e5440 trace)));
      (let plan = Pi_uarch.Replay.compile Pi_uarch.Machine.xeon_e5440 trace in
       Test.make ~name:"pipeline:replay"
         (Staged.stage (fun () -> ignore (Pi_uarch.Replay.run plan placement))));
      Test.make ~name:"layout:link"
        (Staged.stage (fun () ->
             ignore (Pi_layout.Code_layout.randomized trace.Pi_isa.Trace.program ~seed:7)));
      Test.make ~name:"stats:linreg-fit"
        (let xs = Array.init 200 (fun i -> float_of_int i) in
         let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
         Staged.stage (fun () -> ignore (Linreg.fit xs ys)));
      Test.make ~name:"stats:t-quantile"
        (Staged.stage (fun () ->
             ignore (Pi_stats.Distributions.Student_t.quantile ~df:98.0 0.975)));
    ]
  in
  let grouped = Test.make_grouped ~name:"interferometry" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols instance results in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) analyzed [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ estimate ] -> Printf.printf "%-36s %14.1f ns/run\n" name estimate
      | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows)

let all_experiments =
  [
    ("campaign", campaign);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("significance", significance_experiment);
    ("table1", table1);
    ("fig7", fig7);
    ("fig8", fig8);
    ("headline", headline);
    ("samples", samples);
    ("machines", machines);
    ("simpoints", simpoints);
    ("ablations", ablations);
  ]

(* Observability artifacts: spans cover every experiment (and, through the
   library instrumentation, every prepare/replay/fit inside them); the
   trace and a final metrics scrape are written next to the figures. *)
let trace_out = Option.value ~default:"BENCH_trace.json" (Sys.getenv_opt "PI_TRACE_OUT")
let metrics_out =
  Option.value ~default:"BENCH_metrics.prom" (Sys.getenv_opt "PI_METRICS_OUT")

let run_experiment name f = Pi_obs.Span.with_ ~name ~cat:"bench" f

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  if trace_out <> "-" then Pi_obs.Span.set_enabled true;
  Printf.printf
    "Program Interferometry reproduction — %d reorderings/benchmark, scale %d, seed %d\n"
    n_layouts scale master_seed;
  Pi_obs.Log.info "knobs: %s PI_JOBS=%s PI_CACHE_DIR=%s"
    (Interferometry.Knobs.describe
       [ ("PI_LAYOUTS", n_layouts); ("PI_SCALE", scale); ("PI_SEED", master_seed) ])
    (match Sys.getenv_opt "PI_JOBS" with
    | Some _ -> string_of_int (env_int "PI_JOBS" (Pi_campaign.Scheduler.default_jobs ()))
    | None -> Printf.sprintf "%d(auto)" (Pi_campaign.Scheduler.default_jobs ()))
    (Option.value ~default:"(none)" (Sys.getenv_opt "PI_CACHE_DIR"));
  let t0 = Pi_obs.Clock.now () in
  (match requested with
  | [] -> List.iter (fun (name, f) -> run_experiment name f) all_experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> run_experiment name f
          | None when name = "micro" -> run_experiment "micro" micro
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s micro\n" name
                (String.concat " " (List.map fst all_experiments)))
        names);
  Printf.printf "\ntotal time: %.1fs\n" (Pi_obs.Clock.now () -. t0);
  if trace_out <> "-" then begin
    Pi_obs.Span.save ~path:trace_out;
    Pi_obs.Log.info "trace: %s (load in Perfetto, see docs/OBSERVABILITY.md)" trace_out
  end;
  if metrics_out <> "-" then begin
    Pi_obs.Metrics.save_prometheus ~path:metrics_out;
    Pi_obs.Log.info "metrics: %s" metrics_out
  end
